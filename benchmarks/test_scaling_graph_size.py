"""Scaling sweep — the paper's "feasible for large graphs" claim (Exp-2).

The paper reports BiQGen finishing in 78 s on the 3M-node/26M-edge LKI.
Absolute scale is out of reach for a default CI run, so this bench sweeps
the emulation scale and tracks how runtime and verification work grow —
the trend a user extrapolates before running `REPRO_BENCH_SCALE=1.0`.
"""

from repro.bench import save_table
from repro.bench.harness import make_config
from repro.bench.settings import BenchSettings
from repro.core import BiQGen, EnumQGen, RfQGen
from repro.datasets import lki_bundle


def run_sweep(base_settings):
    rows = []
    for scale in (0.1, 0.2, 0.4):
        bundle = lki_bundle(scale=scale, coverage_total=base_settings.coverage_total)
        settings = BenchSettings(
            scale,
            base_settings.coverage_total,
            base_settings.max_domain_values,
            base_settings.epsilon,
        )
        config = make_config(bundle, settings)
        for algo_cls in (EnumQGen, RfQGen, BiQGen):
            result = algo_cls(config).run()
            rows.append(
                {
                    "scale": scale,
                    "|V|": bundle.graph.num_nodes,
                    "|E|": bundle.graph.num_edges,
                    "algorithm": result.algorithm,
                    "time (s)": round(result.stats.elapsed_seconds, 4),
                    "verified": result.stats.verified,
                    "|returned|": len(result),
                }
            )
    return rows


def test_scaling_graph_size(benchmark, settings, results_dir):
    rows = benchmark.pedantic(run_sweep, args=(settings,), rounds=1, iterations=1)
    save_table(
        rows,
        results_dir / "scaling_graph_size.txt",
        "Scaling: runtime/work vs graph size (LKI emulation)",
        extra=settings.paper_mapping,
    )
    # Graph size grows with scale.
    sizes = sorted({(row["scale"], row["|V|"]) for row in rows})
    assert all(a[1] < b[1] for a, b in zip(sizes, sizes[1:]))
    # At every scale the pruned algorithms verify no more than Enum.
    for scale in (0.1, 0.2, 0.4):
        at_scale = {r["algorithm"]: r for r in rows if r["scale"] == scale}
        assert at_scale["RfQGen"]["verified"] <= at_scale["EnumQGen"]["verified"]
        assert at_scale["BiQGen"]["verified"] <= at_scale["EnumQGen"]["verified"]
    # Enum's wall time grows from the smallest to the largest graph.
    enum_times = [
        r["time (s)"] for r in rows if r["algorithm"] == "EnumQGen"
    ]
    assert enum_times[-1] >= enum_times[0]
