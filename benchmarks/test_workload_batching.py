"""Pytest wrapper around the standalone workload-batching benchmark.

Runs the smoke-mode workload (same dense graph, k=8 requests) and
enforces the serving acceptance bar: the warm path — one BatchSession
sharing indexes and workload literal pools — must beat k independent
cold runs, with the workload pool doing real work. The JSON artifact
lands in ``benchmarks/results``; the canonical ``BENCH_serving.json`` at
the repo root is written by running the script directly (as CI does).
"""

import json

from workload_batching import run


def test_workload_batching_smoke(results_dir):
    report = run(smoke=True)
    (results_dir / "workload_batching.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    assert report["workload"]["requests"] >= 8
    assert report["speedup_warm_over_cold"] >= 1.5
    warm = report["warm"]
    assert warm["workload_pool_hits"] > 0
    assert warm["workload_pool_hit_rate"] > 0.5
