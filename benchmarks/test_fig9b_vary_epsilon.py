"""Fig. 9(b) — impact of ε on effectiveness (LKI).

Paper shape: as ε grows the archives keep fewer boxes, so ε_m grows (all
bounded by ε) — the exact Kungs stays at 1 while the approximations trade
quality for set size. The trend we assert: Kungs = 1 everywhere and the
approximations are never *above* Kungs.
"""

from repro.bench import save_table
from repro.bench.experiments import fig9b_vary_epsilon


def test_fig9b_vary_epsilon(benchmark, ctx, settings, results_dir):
    rows = benchmark.pedantic(fig9b_vary_epsilon, args=(ctx,), rounds=1, iterations=1)
    save_table(
        rows,
        results_dir / "fig9b_vary_epsilon.txt",
        "Fig 9(b): I_eps vs epsilon (LKI)",
        extra=settings.paper_mapping,
    )
    assert [row["epsilon"] for row in rows] == [0.2, 0.4, 0.6, 0.8, 1.0]
    for row in rows:
        assert row["Kungs"] == 1.0
        for algo in ("EnumQGen", "RfQGen", "BiQGen"):
            assert 0.0 <= row[algo] <= 1.0
    # At some ε above the default the approximation becomes strictly lossy
    # (the trade-off the figure demonstrates).
    assert any(
        row[algo] < 1.0
        for row in rows
        for algo in ("EnumQGen", "RfQGen", "BiQGen")
    )
