"""Pytest wrapper around the standalone delta-scoring benchmark.

Runs the smoke-mode chain workload (full-size answers, shorter chains)
and enforces the scoring acceptance bar: delta-maintained evaluation
must be at least 2x faster than from-scratch for every answer size
≥ 64, with the fingerprint cache absorbing the sibling repeats. The
bitwise-equality assertions live inside ``run`` itself — it raises if a
single delta-scored triple deviates. The JSON artifact lands in
``benchmarks/results``; the canonical ``BENCH_scoring.json`` at the repo
root is written by running the script directly (as CI does).
"""

import json

from scoring_delta import run


def test_scoring_delta_smoke(results_dir):
    report = run(smoke=True)
    (results_dir / "scoring_delta.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    for size, entry in report["chains"]["sizes"].items():
        assert entry["answer_size"] >= 64
        assert entry["speedup"] >= 2.0, f"size {size}: only {entry['speedup']}x"
        assert entry["score_cache_hit_rate"] > 0.3
        assert entry["delta_updates"] > 0
    for engine, entry in report["end_to_end"]["engines"].items():
        assert entry["delta"]["delta_updates"] > 0
        assert entry["delta"]["score_cache_hits"] > 0
        assert entry["delta"]["archive_size"] == entry["scratch"]["archive_size"]
