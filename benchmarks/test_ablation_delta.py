"""A5 — incremental match maintenance vs full recomputation.

Times maintaining a suggestion's answer across edge deltas through the
localized d-hop re-verification against the naive strategy (full match on
every update). The localized path re-verifies only the ball around the
touched endpoints; the saving grows with graph size.
"""

import random
import time

from repro.bench import save_table
from repro.bench.harness import make_config
from repro.core import BiQGen
from repro.core.lattice import InstanceLattice
from repro.matching.delta import GraphDelta, IncrementalMatchMaintainer, apply_delta
from repro.matching.matcher import SubgraphMatcher


def _random_delta(graph, rng):
    people = sorted(graph.nodes_with_label("person"))
    existing = [e.key for e in graph.edges() if e.label == "recommend"]
    inserts = []
    for _ in range(20):
        a, b = rng.sample(people, 2)
        if not graph.has_edge(a, b, "recommend"):
            inserts.append((a, b, "recommend"))
            break
    deletes = [rng.choice(existing)] if existing else []
    return GraphDelta(insert_edges=tuple(inserts), delete_edges=tuple(deletes))


def run_ablation(ctx, settings, updates=8):
    bundle = ctx.bundle("lki")
    config = make_config(bundle, settings)
    instance = InstanceLattice(config).root()

    rng = random.Random(11)
    deltas = []
    graph = bundle.graph
    for _ in range(updates):
        delta = _random_delta(graph, rng)
        deltas.append(delta)
        graph = apply_delta(graph, delta)

    # Incremental maintenance.
    maintainer = IncrementalMatchMaintainer(bundle.graph, instance)
    start = time.perf_counter()
    rechecked = 0
    for delta in deltas:
        maintainer.apply(delta)
        rechecked += maintainer.last_rechecked
    incremental_time = time.perf_counter() - start
    final_incremental = maintainer.matches

    # Full recomputation baseline.
    graph = bundle.graph
    start = time.perf_counter()
    for delta in deltas:
        graph = apply_delta(graph, delta)
        full = SubgraphMatcher(graph).match(instance).matches
    full_time = time.perf_counter() - start

    assert final_incremental == full, "maintenance must equal recompute"
    label = instance.node_label(instance.output_node)
    pool_size = bundle.graph.count_label(label)
    return [
        {
            "strategy": "incremental (d-hop ball)",
            "time (s)": round(incremental_time, 4),
            "candidates rechecked": rechecked,
        },
        {
            "strategy": "full recompute",
            "time (s)": round(full_time, 4),
            "candidates rechecked": pool_size * updates,
        },
    ]


def test_ablation_delta(benchmark, ctx, settings, results_dir):
    rows = benchmark.pedantic(
        run_ablation, args=(ctx, settings), rounds=1, iterations=1
    )
    save_table(
        rows,
        results_dir / "ablation_delta.txt",
        "A5: incremental match maintenance vs full recompute (LKI)",
        extra=settings.paper_mapping,
    )
    incremental, full = rows
    assert (
        incremental["candidates rechecked"] <= full["candidates rechecked"]
    )
