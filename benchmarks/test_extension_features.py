"""Extension benchmarks: the §VI future-work features implemented here.

Not paper figures — these track the implemented extensions:

* **parallel generation** (ParallelQGen) against sequential EnumQGen;
* **RPQ generation** (RPQGen) over the citation emulation;
* **multi-output generation** (MultiOutputQGen);
* **union-coverage workload selection** (CoverageWorkloadGenerator).
"""

from repro.bench import save_table
from repro.bench.harness import make_config
from repro.core import EnumQGen
from repro.core.multi_output import MultiOutputQGen
from repro.core.parallel import ParallelQGen, _fork_available
from repro.query.predicates import Op
from repro.query.variables import RangeVariable
from repro.rpq import RPQGen, RPQTemplate
from repro.workload.benchmark_suite import CoverageWorkloadGenerator


def test_extension_parallel(benchmark, ctx, settings, results_dir):
    bundle = ctx.bundle("lki")
    config = make_config(bundle, settings)
    workers = 2 if _fork_available() else 1

    def run():
        return ParallelQGen(config, workers=workers, batch_size=16).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    serial = EnumQGen(config).run()
    rows = [
        {
            "algorithm": "EnumQGen (serial)",
            "time (s)": round(serial.stats.elapsed_seconds, 4),
            "|returned|": len(serial),
        },
        {
            "algorithm": f"ParallelQGen (workers={workers})",
            "time (s)": round(result.stats.elapsed_seconds, 4),
            "|returned|": len(result),
        },
    ]
    save_table(rows, results_dir / "extension_parallel.txt",
               "Extension: parallel generation (LKI)", extra=settings.paper_mapping)
    assert sorted(p.objectives for p in result.instances) == sorted(
        p.objectives for p in serial.instances
    )


def test_extension_rpq(benchmark, ctx, settings, results_dir):
    bundle = ctx.bundle("cite")
    template = RPQTemplate(
        "citation-influence",
        source_label="paper",
        path="cites+",
        range_variables=[
            RangeVariable("min_src_year", "source", "year", Op.GE),
            RangeVariable("min_citations", "target", "numberOfCitations", Op.GE),
        ],
    )

    def run():
        return RPQGen(
            bundle.graph, template, bundle.groups,
            epsilon=0.2, max_domain_values=settings.max_domain_values,
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "verified": result.stats.verified,
            "feasible": result.stats.feasible,
            "|eps-Pareto|": len(result),
            "time (s)": round(result.stats.elapsed_seconds, 4),
        }
    ]
    save_table(rows, results_dir / "extension_rpq.txt",
               "Extension: FairSQG over RPQs (Cite, cites+)",
               extra=settings.paper_mapping)
    assert result.instances, "the RPQ setting must admit feasible instances"
    for point in result.instances:
        assert bundle.groups.is_feasible(point.matches)


def test_extension_multi_output(benchmark, ctx, settings, results_dir):
    bundle = ctx.bundle("lki")
    config = make_config(bundle, settings)
    # u0 (directors) and u1 (recommenders) share the 'person' label.
    gen = MultiOutputQGen(config, ["u0", "u1"])
    result = benchmark.pedantic(gen.run, rounds=1, iterations=1)
    single = EnumQGen(config).run()
    rows = [
        {
            "mode": "single output (u0)",
            "|eps-Pareto|": len(single),
            "max |q(G)|": max((p.cardinality for p in single.instances), default=0),
        },
        {
            "mode": "multi output (u0 ∪ u1)",
            "|eps-Pareto|": len(result),
            "max |q(G)|": max((p.cardinality for p in result.instances), default=0),
        },
    ]
    save_table(rows, results_dir / "extension_multi_output.txt",
               "Extension: multiple output nodes (LKI)", extra=settings.paper_mapping)
    # Union answers are supersets, so the best multi-output cardinality is
    # at least the single-output one.
    assert rows[1]["max |q(G)|"] >= rows[0]["max |q(G)|"]


def test_extension_workload_suite(benchmark, ctx, settings, results_dir):
    bundle = ctx.bundle("lki")
    config = make_config(bundle, settings)
    generator = CoverageWorkloadGenerator(config)

    def run():
        return generator.generate(
            {name: 0.1 for name in bundle.groups.names}, max_queries=6
        )

    workload = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(workload.summary_rows(), results_dir / "extension_workload_suite.txt",
               "Extension: union-coverage benchmark workloads (LKI)",
               extra=settings.paper_mapping)
    assert workload.satisfied
    assert len(workload.queries) <= 6
