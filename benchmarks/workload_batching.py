"""Workload batching benchmark: cold vs warm serving latency.

Serves the same k-template workload (k ≥ 8: four templates × a sweep of
ε values) against a dense synthetic graph two ways:

* **cold** — one fresh configuration per request, the way k independent
  :class:`~repro.session.FairSQGSession` runs would execute: every
  request rebuilds its own attribute tables, bitset enumerations,
  adjacency rows and literal masks;
* **warm** — one :class:`~repro.session.BatchSession` serving the whole
  workload through the shared cache hierarchy (process-lifetime
  ``GraphContext`` indexes + workload-scoped literal pools).

Per-request results are asserted identical between the two modes (the
serving layer's core contract), then wall-clock totals, per-request
latency and the workload literal-pool hit rate land in
``BENCH_serving.json`` at the repository root.

Template refinement is disabled for the workload: its per-run d-hop
neighborhood sampling is identical in both modes and would only dilute
the cache effect being measured.

Standalone on purpose: CI installs only pytest + hypothesis, so this
script depends on nothing beyond the library and the standard library.

Usage::

    PYTHONPATH=src python benchmarks/workload_batching.py           # full
    PYTHONPATH=src python benchmarks/workload_batching.py --smoke   # CI

Smoke mode shrinks the ε sweep (k=8) and repeat count but keeps the
graph at full size, so the reported speedup stays representative.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.core.config import GenerationConfig
from repro.datasets.synthetic import (
    EdgePopulation,
    GaussInt,
    NodePopulation,
    SyntheticSpec,
    UniformChoice,
    UniformInt,
    ZipfChoice,
    build_synthetic,
)
from repro.groups.groups import groups_from_attribute
from repro.query import Literal, Op, QueryTemplate
from repro.service.scheduler import ALGORITHMS
from repro.session import BatchSession

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_serving.json"

#: Graph size is NOT reduced in smoke mode — per-request index rebuild
#: cost (what the warm path amortizes) is a dense-graph property.
GRAPH_NODES = 4000
GRAPH_SEED = 11

#: Per-request configuration shared by both modes.
REQUEST_OPTIONS = dict(
    matcher_engine="bitset",
    max_domain_values=3,
    use_template_refinement=False,
)


def serving_graph():
    """A dense one-component synthetic graph (~4k nodes, ~70k edges)."""
    spec = SyntheticSpec(
        name="serving-bench",
        nodes=[
            NodePopulation(
                "person",
                GRAPH_NODES,
                {
                    "yearsOfExp": GaussInt(12, 6, 0, 40),
                    "score": UniformInt(0, 100),
                    "major": UniformChoice(("CS", "EE", "Business", "Design")),
                    "seniority": ZipfChoice(("junior", "mid", "senior", "staff")),
                },
            ),
        ],
        edges=[
            EdgePopulation(
                "person",
                "knows",
                "person",
                out_degree=UniformInt(10, 25),
                attachment="preferential",
            ),
        ],
    )
    return build_synthetic(spec, scale=1.0, seed=GRAPH_SEED)


def serving_groups(graph):
    return groups_from_attribute(
        graph, "major", {"CS": 2, "Business": 2}, label="person"
    )


def _template(name, sel_attr, sel_val, attr1, attr2) -> QueryTemplate:
    """A selective 2-node pattern: recommender above a score/experience bar."""
    return (
        QueryTemplate.builder(name)
        .node("u0", "person")
        .node("u1", "person", Literal(sel_attr, Op.GE, sel_val))
        .fixed_edge("u1", "u0", "knows")
        .range_var("xl1", "u1", attr1, Op.GE)
        .range_var("xl2", "u0", attr2, Op.GE)
        .output("u0")
        .build()
    )


def workload_templates() -> List[QueryTemplate]:
    """Four templates sharing attributes, so literal masks recur across
    requests the way a real workload's predicates do."""
    return [
        _template("t1", "score", 92, "yearsOfExp", "score"),
        _template("t2", "score", 94, "score", "yearsOfExp"),
        _template("t3", "yearsOfExp", 26, "yearsOfExp", "yearsOfExp"),
        _template("t4", "yearsOfExp", 28, "score", "score"),
    ]


Workload = List[Tuple[QueryTemplate, float]]


def workload(epsilons: Sequence[float]) -> Workload:
    return [(t, eps) for t in workload_templates() for eps in epsilons]


def _front(result):
    """Comparable rendering of a result's ε-Pareto set."""
    return [
        (dict(p.instance.instantiation), p.delta, p.coverage, p.cardinality)
        for p in result.instances
    ]


def run_cold(graph, groups, pairs: Workload) -> Dict:
    """k independent runs — nothing shared, fresh indexes per request."""
    latencies = []
    fronts = []
    for template, epsilon in pairs:
        start = time.perf_counter()
        config = GenerationConfig(
            graph, template, groups, epsilon=epsilon, **REQUEST_OPTIONS
        )
        fronts.append(_front(ALGORITHMS["biqgen"](config).run()))
        latencies.append(time.perf_counter() - start)
    return {"seconds": sum(latencies), "latencies": latencies, "fronts": fronts}


def run_warm(graph, groups, pairs: Workload) -> Dict:
    """One BatchSession serving the whole workload through shared tiers.

    Session construction (index build + warm-up) is inside the timed
    region — the warm path must win including its setup cost.
    """
    start = time.perf_counter()
    batch = BatchSession(graph, groups, engine="bitset", warm=True,
                         **{k: v for k, v in REQUEST_OPTIONS.items()
                            if k != "matcher_engine"})
    outcomes = batch.run(
        [batch.request(t, epsilon=eps) for t, eps in pairs]
    )
    total = time.perf_counter() - start
    for outcome in outcomes:
        if not outcome.ok:
            raise AssertionError(f"warm request failed: {outcome.error}")
    hits = batch.metrics.value("service.workload_pool.hits")
    misses = batch.metrics.value("service.workload_pool.misses")
    return {
        "seconds": total,
        "latencies": [o.elapsed_seconds for o in outcomes],
        "fronts": [_front(o.result) for o in outcomes],
        "workload_pool_hits": hits,
        "workload_pool_misses": misses,
        "workload_pool_hit_rate": round(hits / (hits + misses), 4)
        if hits + misses
        else None,
    }


def run(smoke: bool = False) -> Dict:
    graph = serving_graph()
    groups = serving_groups(graph)
    epsilons = (0.1, 0.25) if smoke else (0.08, 0.15, 0.25, 0.4)
    repeats = 1 if smoke else 3
    pairs = workload(epsilons)

    cold = warm = None
    for _ in range(repeats):  # best-of-N keeps scheduler noise out
        cold_run = run_cold(graph, groups, pairs)
        warm_run = run_warm(graph, groups, pairs)
        if cold_run["fronts"] != warm_run["fronts"]:
            raise AssertionError("cold and warm modes disagree on results")
        if cold is None or cold_run["seconds"] < cold["seconds"]:
            cold = cold_run
        if warm is None or warm_run["seconds"] < warm["seconds"]:
            warm = warm_run

    def summarize(entry, extra=()):
        latencies = entry["latencies"]
        out = {
            "seconds": round(entry["seconds"], 4),
            "requests": len(latencies),
            "mean_request_seconds": round(sum(latencies) / len(latencies), 5),
            "max_request_seconds": round(max(latencies), 5),
        }
        for key in extra:
            out[key] = entry[key]
        return out

    return {
        "benchmark": "workload_batching",
        "mode": "smoke" if smoke else "full",
        "graph": {
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "seed": GRAPH_SEED,
        },
        "workload": {
            "templates": len(workload_templates()),
            "epsilons": list(epsilons),
            "requests": len(pairs),
            "repeats": repeats,
            "options": {k: str(v) for k, v in REQUEST_OPTIONS.items()},
        },
        "cold": summarize(cold),
        "warm": summarize(
            warm,
            extra=(
                "workload_pool_hits",
                "workload_pool_misses",
                "workload_pool_hit_rate",
            ),
        ),
        "speedup_warm_over_cold": round(cold["seconds"] / warm["seconds"], 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="reduced sweep for CI smoke runs"
    )
    parser.add_argument(
        "--output", type=Path, default=RESULT_FILE, help="result JSON path"
    )
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"graph: {report['graph']['nodes']} nodes / {report['graph']['edges']} edges; "
        f"{report['workload']['requests']} requests x{report['workload']['repeats']}"
    )
    for mode in ("cold", "warm"):
        entry = report[mode]
        print(
            f"  {mode:>5}: {entry['seconds']:.3f}s total "
            f"({entry['mean_request_seconds'] * 1000:.1f} ms/request)"
        )
    print(
        f"speedup: {report['speedup_warm_over_cold']}x; "
        f"workload pool hit rate: {report['warm']['workload_pool_hit_rate']}"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
