"""Fig. 10(c) — efficiency vs |X_L| (DBP).

Paper shape: work grows with the number of range variables (the instance
space multiplies), with BiQGen the least sensitive thanks to pruning.
"""

from repro.bench import save_table
from repro.bench.experiments import fig10c_vary_xl


def test_fig10c_vary_xl(benchmark, ctx, settings, results_dir):
    rows = benchmark.pedantic(fig10c_vary_xl, args=(ctx,), rounds=1, iterations=1)
    save_table(
        rows,
        results_dir / "fig10c_vary_xl.txt",
        "Fig 10(c): runtime/work vs |X_L| (DBP, |Q|=4)",
        extra=settings.paper_mapping,
    )
    assert rows, "at least one |X_L| setting must run"
    for setting in {row["setting"] for row in rows}:
        series = {r["algorithm"]: r for r in rows if r["setting"] == setting}
        assert series["RfQGen"]["verified"] <= series["EnumQGen"]["verified"]
        assert series["BiQGen"]["verified"] <= series["EnumQGen"]["verified"]
