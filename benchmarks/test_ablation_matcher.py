"""A4 — matching micro-benchmarks: AC propagation and the full pipeline.

Times the two phases of instance verification on the LKI emulation —
candidate filtering + arc consistency, and the full ``match`` (including
the acyclic fast path). Not a paper figure; used to track matcher
regressions while extending the library.
"""

from repro.bench.harness import make_config
from repro.core.lattice import InstanceLattice
from repro.graph.indexes import GraphIndexes
from repro.matching.candidates import initial_candidates, propagate
from repro.matching.matcher import SubgraphMatcher


def _root_instance(ctx, settings):
    bundle = ctx.bundle("lki")
    config = make_config(bundle, settings)
    return config, InstanceLattice(config).root()


def test_candidate_propagation(benchmark, ctx, settings):
    config, root = _root_instance(ctx, settings)
    indexes = GraphIndexes(config.graph)

    def run():
        candidates = initial_candidates(indexes, root)
        return propagate(config.graph, root, candidates)

    candidates, removed = benchmark(run)
    assert candidates[root.output_node], "root must have matches"


def test_full_match(benchmark, ctx, settings):
    config, root = _root_instance(ctx, settings)
    matcher = SubgraphMatcher(config.graph)
    result = benchmark(lambda: matcher.match(root))
    assert result.matches


def test_full_match_bitset(benchmark, ctx, settings):
    config, root = _root_instance(ctx, settings)
    matcher = SubgraphMatcher(config.graph, engine="bitset")
    result = benchmark(lambda: matcher.match(root))
    assert result.matches
