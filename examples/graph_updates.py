"""Maintaining suggestions while the graph changes underneath.

Social graphs evolve; re-running FairSQG from scratch after every edit is
wasteful. This example keeps a suggested query's answer — and its fairness
audit — up to date across a stream of edge insertions/deletions using the
localized match maintenance of :mod:`repro.matching.delta` (the paper's
incremental-matching substrate, ref [17]).

Run:  python examples/graph_updates.py [--updates 10]
"""

import argparse
import random

from repro import BiQGen, GenerationConfig, select_by_preference
from repro.datasets import lki_bundle
from repro.groups.auditing import audit_answer
from repro.matching.delta import GraphDelta, IncrementalMatchMaintainer


def random_delta(graph, rng):
    """One random recommend-edge insertion plus one deletion."""
    people = sorted(graph.nodes_with_label("person"))
    existing = [e.key for e in graph.edges() if e.label == "recommend"]
    inserts = []
    for _ in range(20):
        a, b = rng.sample(people, 2)
        if not graph.has_edge(a, b, "recommend"):
            inserts.append((a, b, "recommend"))
            break
    deletes = [rng.choice(existing)] if existing else []
    return GraphDelta(insert_edges=tuple(inserts), delete_edges=tuple(deletes))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument("--coverage", type=int, default=8)
    parser.add_argument("--updates", type=int, default=10)
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()

    bundle = lki_bundle(scale=args.scale, coverage_total=args.coverage)
    config = GenerationConfig(
        bundle.graph, bundle.template, bundle.groups,
        epsilon=0.1, max_domain_values=5,
    )

    # Generate once; keep the coverage-leaning suggestion under maintenance.
    result = BiQGen(config).run()
    pick = select_by_preference(result.instances, lambda_r=0.8)
    if pick is None:
        print("no feasible suggestion at this scale; raise --scale")
        return
    print("maintained suggestion:")
    print(pick.instance.describe())
    audit = audit_answer(pick.matches, bundle.groups)
    print(f"\nt=0: {audit.summary()}")

    maintainer = IncrementalMatchMaintainer(bundle.graph, pick.instance)
    assert maintainer.matches == pick.matches

    rng = random.Random(args.seed)
    for step in range(1, args.updates + 1):
        delta = random_delta(maintainer.graph, rng)
        maintainer.apply(delta)
        audit = audit_answer(maintainer.matches, bundle.groups)
        print(
            f"t={step}: +{len(delta.insert_edges)}/-{len(delta.delete_edges)} edges, "
            f"re-verified {maintainer.last_rechecked} candidates -> "
            f"|q(G)|={len(maintainer.matches)}, "
            f"feasible={audit.feasible}, DI={audit.disparate_impact:.2f}"
        )

    print("\n(each step re-verified only the delta's d-hop neighborhood, "
          "not the whole graph)")


if __name__ == "__main__":
    main()
