"""Talent search with Equal Opportunity — the paper's running example.

Reproduces the Fig. 1 scenario on the LKI emulation: a recruiter's initial
query for recommended directors returns a gender-skewed answer; FairSQG
suggests query instances whose answers cover both gender groups with the
desired cardinality while staying diverse. The script reports the initial
skew, the suggested instances, and their disparate-impact ratios (the
"80% rule").

Run:  python examples/talent_search.py [--scale 0.2]
"""

import argparse

from repro import (
    BiQGen,
    GenerationConfig,
    RfQGen,
    explain_suggestion,
    select_by_preference,
)
from repro.core.evaluator import InstanceEvaluator
from repro.core.lattice import InstanceLattice
from repro.datasets import lki_bundle
from repro.groups.fairness import disparate_impact_ratio, satisfies_eighty_percent_rule


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--coverage", type=int, default=12)
    parser.add_argument("--epsilon", type=float, default=0.05)
    args = parser.parse_args()

    bundle = lki_bundle(scale=args.scale, coverage_total=args.coverage)
    config = GenerationConfig(
        bundle.graph, bundle.template, bundle.groups,
        epsilon=args.epsilon, max_domain_values=6,
    )

    # The "initial query": the most refined instance — everything bound
    # tight, both recommendation edges required.
    evaluator = InstanceEvaluator(config)
    lattice = InstanceLattice(config)
    initial = evaluator.evaluate(lattice.root())
    skew = config.groups.overlaps(initial.matches)
    print(f"graph: {bundle.graph}")
    print(f"groups: {bundle.groups}")
    print(f"\ninitial (most relaxed) answer: {initial.cardinality} candidates, "
          f"per-gender {skew}, disparate-impact ratio "
          f"{disparate_impact_ratio(skew):.2f}")

    for name, algo_cls in (("RfQGen", RfQGen), ("BiQGen", BiQGen)):
        result = algo_cls(config).run()
        print(f"\n=== {name}: {len(result)} suggested instances "
              f"({result.stats.verified} verified, {result.stats.pruned} pruned, "
              f"{result.stats.elapsed_seconds:.2f}s) ===")
        for point in result.instances:
            overlaps = config.groups.overlaps(point.matches)
            ratio = disparate_impact_ratio(overlaps)
            rule = "PASS" if satisfies_eighty_percent_rule(overlaps) else "fail"
            print(f"  δ={point.delta:8.3f}  f={point.coverage:5.1f}  "
                  f"|q(G)|={point.cardinality:4d}  per-gender={overlaps}  "
                  f"80%-rule: {rule} (ratio {ratio:.2f})")
        # A coverage-leaning recruiter (λ_R = 0.8) gets one concrete pick,
        # explained as edits relative to the initial query.
        pick = select_by_preference(result.instances, lambda_r=0.8)
        if pick is not None:
            print("\n  preferred suggestion (λ_R = 0.8) and why:")
            for line in pick.instance.describe().splitlines():
                print("   ", line)
            print()
            for line in explain_suggestion(initial, pick, config.groups).splitlines():
                print("   ", line)


if __name__ == "__main__":
    main()
