"""Fair academic recommendation over the citation graph.

Searches the Cite emulation for well-cited papers by strong authors while
covering several research-topic groups — the paper's third application.
Also contrasts the full exact Pareto front (Kungs) with the bounded
ε-Pareto sets (BiQGen) to show why the approximation matters: the exact
front can be several times larger than what a user can inspect.

Run:  python examples/academic_search.py [--topics 3]
"""

import argparse

from repro import BiQGen, GenerationConfig, Kungs
from repro.core.indicators import normalized_epsilon_indicator
from repro.datasets.cite import build_cite, cite_groups, cite_template


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--topics", type=int, default=3)
    parser.add_argument("--coverage", type=int, default=12)
    parser.add_argument("--epsilon", type=float, default=0.2)
    args = parser.parse_args()

    graph = build_cite(scale=args.scale)
    groups = cite_groups(graph, num_groups=args.topics, coverage_total=args.coverage)
    print(f"graph: {graph}")
    print(f"topic groups: {groups}")

    config = GenerationConfig(
        graph, cite_template(), groups, epsilon=args.epsilon, max_domain_values=6
    )

    exact = Kungs(config).run()
    print(f"\nexact Pareto front (Kungs): {len(exact)} instances, "
          f"{exact.stats.elapsed_seconds:.2f}s")

    approx = BiQGen(config).run()
    quality = normalized_epsilon_indicator(
        approx.instances, exact.instances, config.epsilon
    )
    print(f"ε-Pareto set (BiQGen, ε={config.epsilon}): {len(approx)} instances, "
          f"{approx.stats.elapsed_seconds:.2f}s, I_ε={quality:.3f} vs the front")

    print("\nsuggested queries:")
    for point in approx.instances:
        overlaps = config.groups.overlaps(point.matches)
        print(f"\n  δ={point.delta:.2f}  f={point.coverage:.1f}  "
              f"|q(G)|={point.cardinality}  per-topic={overlaps}")
        for line in point.instance.describe().splitlines():
            print("   ", line)


if __name__ == "__main__":
    main()
