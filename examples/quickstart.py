"""Quickstart: FairSQG on a ten-node graph you can check by hand.

Builds a tiny professional network, writes a talent-search template with
one range variable and one optional edge, and asks BiQGen for an ε-Pareto
set of query instances balancing answer diversity against covering each
gender group with exactly one candidate.

Run:  python examples/quickstart.py
"""

from repro import (
    BiQGen,
    GenerationConfig,
    GraphBuilder,
    GroupSet,
    Literal,
    NodeGroup,
    Op,
    QueryTemplate,
)


def build_graph():
    """Two orgs, two recommenders, four director candidates."""
    b = GraphBuilder("quickstart")
    small = b.node("org", name="smallco", employees=100)
    big = b.node("org", name="bigco", employees=1000)
    r1 = b.node("person", name="ann", title="analyst", yearsOfExp=5, gender="F")
    r2 = b.node("person", name="bob", title="analyst", yearsOfExp=12, gender="M")
    d1 = b.node("person", name="carol", title="director", yearsOfExp=15, gender="F")
    d2 = b.node("person", name="dave", title="director", yearsOfExp=18, gender="M")
    d3 = b.node("person", name="erin", title="director", yearsOfExp=20, gender="F")
    d4 = b.node("person", name="fred", title="director", yearsOfExp=9, gender="M")
    b.edge(r1, small, "worksAt")
    b.edge(r2, big, "worksAt")
    for recommender, candidate in [(r1, d1), (r1, d2), (r1, d4), (r2, d2), (r2, d3)]:
        b.edge(recommender, candidate, "recommend")
    return b.build(), {"directors": [d1, d2, d3, d4]}


def build_template():
    """Find directors recommended by someone at a sufficiently large org."""
    return (
        QueryTemplate.builder("talent")
        .node("u0", "person", Literal("title", Op.EQ, "director"))
        .node("u1", "person")
        .node("u2", "org")
        .fixed_edge("u1", "u0", "recommend")
        .fixed_edge("u1", "u2", "worksAt")
        .range_var("min_exp", "u1", "yearsOfExp", Op.GE)
        .range_var("min_size", "u2", "employees", Op.GE)
        .output("u0")
        .build()
    )


def main():
    graph, info = build_graph()
    template = build_template()

    directors = info["directors"]
    male = frozenset(v for v in directors if graph.attribute(v, "gender") == "M")
    female = frozenset(v for v in directors if graph.attribute(v, "gender") == "F")
    groups = GroupSet(
        [NodeGroup("M", male, 1), NodeGroup("F", female, 1)]
    )

    config = GenerationConfig(graph, template, groups, epsilon=0.3)
    result = BiQGen(config).run()

    print(f"BiQGen returned {len(result)} instances "
          f"(verified {result.stats.verified}, pruned {result.stats.pruned}):\n")
    for point in result.instances:
        names = sorted(graph.attribute(v, "name") for v in point.matches)
        overlaps = groups.overlaps(point.matches)
        print(f"δ = {point.delta:.3f}  f = {point.coverage:.1f}  "
              f"matches = {names}  per-group = {overlaps}")
        print(point.instance.describe())
        print()


if __name__ == "__main__":
    main()
