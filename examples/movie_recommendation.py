"""Fair movie recommendation — the paper's Fig. 12 case study.

Over the DBP movie-knowledge-graph emulation, searches for movies with
parameterized rating/awards conditions while enforcing an equal coverage
of two genre groups (e.g. Action vs Romance). Compares the instances
RfQGen and BiQGen prefer — diversified-but-skewed vs coverage-balanced —
and prints each algorithm's picks as readable queries.

Run:  python examples/movie_recommendation.py [--genres Action Romance]
"""

import argparse

from repro import BiQGen, GenerationConfig, RfQGen
from repro.datasets.dbp import build_dbp, dbp_template
from repro.groups.groups import groups_from_attribute


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--genres", nargs=2, default=["Action", "Romance"])
    parser.add_argument("--per-genre", type=int, default=8,
                        help="desired number of covered movies per genre")
    parser.add_argument("--epsilon", type=float, default=0.05)
    args = parser.parse_args()

    graph = build_dbp(scale=args.scale)
    groups = groups_from_attribute(
        graph,
        "genre",
        {genre: args.per_genre for genre in args.genres},
        label="movie",
    )
    print(f"graph: {graph}")
    print(f"coverage constraints: {groups}")

    config = GenerationConfig(
        graph, dbp_template(), groups, epsilon=args.epsilon, max_domain_values=6
    )

    for name, algo_cls in (("RfQGen", RfQGen), ("BiQGen", BiQGen)):
        result = algo_cls(config).run()
        print(f"\n=== {name} ===")
        if not result.instances:
            print("  no feasible instances (raise --scale or lower --per-genre)")
            continue
        diversity_pick = result.best_by_diversity()
        coverage_pick = result.best_by_coverage()
        for role, point in (
            ("most diversified", diversity_pick),
            ("best genre balance", coverage_pick),
        ):
            overlaps = config.groups.overlaps(point.matches)
            counts = ", ".join(f"{v} {k}" for k, v in overlaps.items())
            print(f"\n  {role}: {point.cardinality} movies ({counts}), "
                  f"δ={point.delta:.2f}, f={point.coverage:.1f}")
            for line in point.instance.describe().splitlines():
                print("   ", line)


if __name__ == "__main__":
    main()
