"""Generating benchmark workloads with union group-coverage goals.

The query-benchmarking application (paper §I and §IV-C): produce a small
set of subgraph queries whose answers *together* cover a desired fraction
of every designated group — here, both gender groups of the LKI emulation.
The selected workload is persisted as JSON and re-loaded, demonstrating
the serialization round-trip a benchmark driver needs.

Run:  python examples/benchmark_workloads.py [--fraction 0.15]
"""

import argparse
import tempfile
from pathlib import Path

from repro import GenerationConfig
from repro.datasets import lki_bundle
from repro.query.serialization import load_workload, save_workload
from repro.workload.benchmark_suite import CoverageWorkloadGenerator


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--fraction", type=float, default=0.15,
                        help="desired covered fraction of each group")
    parser.add_argument("--max-queries", type=int, default=6)
    parser.add_argument("--out", type=Path, default=None,
                        help="where to write the workload JSON")
    args = parser.parse_args()

    bundle = lki_bundle(scale=args.scale, coverage_total=8)
    config = GenerationConfig(
        bundle.graph, bundle.template, bundle.groups,
        epsilon=0.1, max_domain_values=5,
    )
    print(f"graph: {bundle.graph}")
    print(f"goal: cover ≥{args.fraction:.0%} of each of {bundle.groups.names}")

    generator = CoverageWorkloadGenerator(config)
    workload = generator.generate(
        {name: args.fraction for name in bundle.groups.names},
        max_queries=args.max_queries,
    )

    status = "satisfied" if workload.satisfied else "NOT satisfied (pool exhausted)"
    print(f"\nselected {len(workload.queries)} queries — goal {status}")
    for name in bundle.groups.names:
        print(f"  {name}: covered {len(workload.covered[name])} nodes "
              f"({workload.achieved[name]:.1%} of the group)")

    print("\nworkload queries:")
    for i, query in enumerate(workload.queries, start=1):
        print(f"\n  [{i}] δ={query.delta:.2f}  |q(G)|={query.cardinality}")
        for line in query.instance.describe().splitlines():
            print("     ", line)

    out = args.out or Path(tempfile.gettempdir()) / "fairsqg_workload.json"
    save_workload([q.instance for q in workload.queries], out)
    reloaded = load_workload(out)
    print(f"\npersisted to {out} and reloaded {len(reloaded)} queries "
          f"(round-trip OK: {len(reloaded) == len(workload.queries)})")


if __name__ == "__main__":
    main()
