"""FairSQG on your own schema — the full bring-your-own-data workflow.

Declares a small e-commerce-style schema (customers, products, orders)
with the declarative synthetic generator, derives the GraphSchema, spins
random templates from it, validates conformance, and runs FairSQG with
groups over customer segments. Everything a user with their own domain
needs, end to end.

Run:  python examples/custom_dataset.py
"""

from repro import BiQGen, GenerationConfig
from repro.core.report import build_report
from repro.datasets.synthetic import (
    EdgePopulation,
    GaussInt,
    LogUniformInt,
    NodePopulation,
    SyntheticSpec,
    UniformInt,
    WeightedCoin,
    ZipfChoice,
    build_synthetic,
)
from repro.datasets.validation import validate_graph
from repro.groups.groups import groups_from_attribute
from repro.workload import TemplateGenerator, TemplateSpec


def build_shop_spec() -> SyntheticSpec:
    """Customers review products; products belong to sellers."""
    return SyntheticSpec(
        name="shop",
        nodes=[
            NodePopulation(
                "customer",
                400,
                {
                    "segment": WeightedCoin(0.6, "retail", "business"),
                    "age": GaussInt(40, 15, 18, 85),
                    "orders": LogUniformInt(0, 2.5),
                },
            ),
            NodePopulation(
                "product",
                250,
                {
                    "category": ZipfChoice(
                        ("electronics", "home", "books", "toys", "sports")
                    ),
                    "price": LogUniformInt(0.5, 3.5),
                    "rating": GaussInt(38, 8, 10, 50),
                },
            ),
            NodePopulation(
                "seller",
                30,
                {"reputation": UniformInt(1, 100)},
            ),
        ],
        edges=[
            EdgePopulation(
                "customer", "reviewed", "product",
                out_degree=UniformInt(1, 6), attachment="preferential",
            ),
            EdgePopulation(
                "product", "soldBy", "seller",
                out_degree=UniformInt(1, 1), attachment="zipf",
            ),
        ],
    )


def main():
    spec = build_shop_spec()
    graph = build_synthetic(spec, scale=1.0, seed=42)
    schema = spec.to_schema()
    print(f"graph: {graph}")

    violations = validate_graph(graph, schema)
    print(f"schema conformance: {len(violations)} violations")

    # Customer-segment groups: suggestions must surface both retail and
    # business reviewers.
    groups = groups_from_attribute(
        graph, "segment", {"retail": 6, "business": 6}, label="customer"
    )
    print(f"groups: {groups}")

    # A random template anchored at customers, generated from the schema.
    template = TemplateGenerator(schema, seed=9).generate(
        TemplateSpec("customer", size=2, num_range_vars=2, num_edge_vars=1),
        name="active-reviewers",
    )
    print(f"template: {template!r}\n")

    config = GenerationConfig(graph, template, groups, epsilon=0.1,
                              max_domain_values=5)
    result = BiQGen(config).run()
    print(build_report(config, result, lambda_r=0.7))


if __name__ == "__main__":
    main()
