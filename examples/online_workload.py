"""Benchmark-workload generation with OnlineQGen (paper Section IV-C).

Streams random instantiations of a generated template over the LKI
emulation and maintains a *fixed-size* ε-Pareto set of query instances —
the workload-generation use case: exactly k benchmark queries with both
diversity and group-coverage guarantees, maintained with small per-instance
delay while the stream flows.

Run:  python examples/online_workload.py [--k 8 --count 200]
"""

import argparse

from repro import GenerationConfig
from repro.core.online import OnlineQGen
from repro.datasets.lki import LKI_SCHEMA, build_lki, lki_groups
from repro.workload import TemplateGenerator, TemplateSpec, random_instance_stream


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--k", type=int, default=8)
    parser.add_argument("--window", type=int, default=40)
    parser.add_argument("--count", type=int, default=200)
    parser.add_argument("--coverage", type=int, default=10)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    graph = build_lki(scale=args.scale)
    groups = lki_groups(graph, coverage_total=args.coverage)

    # A randomly generated template (|Q|=4, two range vars, one edge var) —
    # the kind a benchmark driver would produce from the schema.
    template = TemplateGenerator(LKI_SCHEMA, seed=args.seed).generate(
        TemplateSpec("person", size=4, num_range_vars=2, num_edge_vars=1)
    )
    print(f"graph: {graph}")
    print(f"template: {template!r}")

    config = GenerationConfig(graph, template, groups, epsilon=0.05, max_domain_values=6)
    online = OnlineQGen(config, k=args.k, window=args.window,
                        snapshot_every=max(1, args.count // 5))
    stream = random_instance_stream(
        template, online.lattice.domains, args.count, seed=args.seed
    )
    result = online.run(stream)

    print(f"\nprocessed {result.stats.generated} stream instances "
          f"({result.stats.feasible} feasible) in "
          f"{result.stats.elapsed_seconds:.2f}s "
          f"(mean delay {result.stats.mean_delay * 1000:.2f} ms, "
          f"max {result.stats.max_delay * 1000:.2f} ms)")
    print(f"final ε = {result.epsilon:.4f} "
          f"(started at {config.epsilon})")

    print("\nevolution:")
    for snap in online.snapshots:
        print(f"  after {snap.timestamp:4d} instances: "
              f"|workload| = {len(snap.archive)}, ε = {snap.epsilon:.4f}")

    print(f"\nfinal workload ({len(result)} queries):")
    for point in result.instances:
        overlaps = config.groups.overlaps(point.matches)
        print(f"  δ={point.delta:8.3f}  f={point.coverage:5.1f}  "
              f"|q(G)|={point.cardinality:4d}  per-group={overlaps}")


if __name__ == "__main__":
    main()
