"""FairSQG over regular path queries — the paper's §VI extension, live.

Uses the citation-graph emulation: find influential papers reachable along
citation chains (``cites+``) from recent seed papers, with parameterized
citation-count thresholds at both path endpoints, while covering several
research topics fairly. Also demos inverse steps: ``authoredBy/^authoredBy``
finds co-authored papers.

Run:  python examples/rpq_exploration.py [--scale 0.2]
"""

import argparse

from repro.datasets.cite import build_cite, cite_groups
from repro.query.predicates import Op
from repro.query.variables import RangeVariable
from repro.rpq import RPQGen, RPQTemplate, evaluate_rpq, parse_regex


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--topics", type=int, default=2)
    parser.add_argument("--coverage", type=int, default=8)
    parser.add_argument("--epsilon", type=float, default=0.2)
    args = parser.parse_args()

    graph = build_cite(scale=args.scale)
    groups = cite_groups(graph, num_groups=args.topics, coverage_total=args.coverage)
    print(f"graph: {graph}")
    print(f"topic groups: {groups}")

    # Plain RPQ evaluation: papers co-authored with paper 0's authors.
    seed = next(iter(graph.nodes_with_label("paper")))
    coauthored = evaluate_rpq(graph, [seed], parse_regex("authoredBy/^authoredBy"))
    print(f"\npapers sharing an author with paper {seed}: {len(coauthored)}")

    # FairSQG over a parameterized RPQ: papers reachable along citation
    # chains from sufficiently recent papers, with a minimum citation count.
    template = RPQTemplate(
        "citation-influence",
        source_label="paper",
        path="cites+",
        range_variables=[
            RangeVariable("min_src_year", "source", "year", Op.GE),
            RangeVariable("min_citations", "target", "numberOfCitations", Op.GE),
        ],
    )
    print(f"\ntemplate: {template!r}")

    result = RPQGen(
        graph, template, groups, epsilon=args.epsilon, max_domain_values=5
    ).run()
    print(f"RPQGen: {result.stats.verified} instances verified, "
          f"{result.stats.feasible} feasible, "
          f"{len(result)} in the ε-Pareto set "
          f"({result.stats.elapsed_seconds:.2f}s)\n")
    for point in result.instances:
        overlaps = groups.overlaps(point.matches)
        print(f"  δ={point.delta:8.2f}  f={point.coverage:5.1f}  "
              f"|q(G)|={point.cardinality:4d}  per-topic={overlaps}")
        print(f"    {point.instance.describe()}")


if __name__ == "__main__":
    main()
