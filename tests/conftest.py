"""Shared fixtures: hand-checkable toy graphs and small dataset bundles."""

from __future__ import annotations

import pytest

from repro import (
    GenerationConfig,
    GroupSet,
    Literal,
    NodeGroup,
    Op,
    QueryTemplate,
)
from repro.graph.builder import GraphBuilder


@pytest.fixture(scope="session")
def talent_graph():
    """A tiny talent-search graph with hand-computable match sets.

    Layout (ids are stable because the builder allocates sequentially):

    * orgs: ``o_small`` (100 employees, id 0), ``o_big`` (1000, id 1)
    * recommenders: ``r1`` (yoe 5, works at o_small, id 2),
      ``r2`` (yoe 12, works at o_big, id 3)
    * directors: ``d1`` (M, CS, id 4), ``d2`` (F, Business, id 5),
      ``d3`` (M, CS, id 6), ``d4`` (F, Design, id 7)
    * recommendations: r1→d1, r1→d2, r1→d4, r2→d2, r2→d3
    """
    b = GraphBuilder("talent-toy")
    o_small = b.node("org", name="smallco", employees=100)
    o_big = b.node("org", name="bigco", employees=1000)
    r1 = b.node("person", name="r1", title="analyst", yearsOfExp=5, gender="M", major="CS")
    r2 = b.node("person", name="r2", title="analyst", yearsOfExp=12, gender="F", major="Business")
    d1 = b.node("person", name="d1", title="director", yearsOfExp=15, gender="M", major="CS")
    d2 = b.node("person", name="d2", title="director", yearsOfExp=18, gender="F", major="Business")
    d3 = b.node("person", name="d3", title="director", yearsOfExp=20, gender="M", major="CS")
    d4 = b.node("person", name="d4", title="director", yearsOfExp=9, gender="F", major="Design")
    b.edge(r1, o_small, "worksAt")
    b.edge(r2, o_big, "worksAt")
    b.edge(r1, d1, "recommend")
    b.edge(r1, d2, "recommend")
    b.edge(r1, d4, "recommend")
    b.edge(r2, d2, "recommend")
    b.edge(r2, d3, "recommend")
    return b.build()


@pytest.fixture(scope="session")
def talent_ids():
    """Stable node ids of the talent graph, by name."""
    return {
        "o_small": 0,
        "o_big": 1,
        "r1": 2,
        "r2": 3,
        "d1": 4,
        "d2": 5,
        "d3": 6,
        "d4": 7,
    }


@pytest.fixture(scope="session")
def talent_template():
    """Fig. 1-style template over the toy talent graph.

    Output ``u0``: a director recommended by ``u1`` who works at org
    ``u2``; range variables on the recommender's experience and the org
    size; one optional second recommendation edge from ``u3``.
    """
    return (
        QueryTemplate.builder("toy-talent")
        .node("u0", "person", Literal("title", Op.EQ, "director"))
        .node("u1", "person")
        .node("u2", "org")
        .node("u3", "person")
        .fixed_edge("u1", "u0", "recommend")
        .fixed_edge("u1", "u2", "worksAt")
        .edge_var("xe1", "u3", "u0", "recommend")
        .range_var("xl1", "u1", "yearsOfExp", Op.GE)
        .range_var("xl2", "u2", "employees", Op.GE)
        .output("u0")
        .build()
    )


@pytest.fixture(scope="session")
def talent_groups(talent_ids):
    """Gender groups over the four directors, c=1 each."""
    ids = talent_ids
    return GroupSet(
        [
            NodeGroup("M", frozenset({ids["d1"], ids["d3"]}), 1),
            NodeGroup("F", frozenset({ids["d2"], ids["d4"]}), 1),
        ]
    )


@pytest.fixture()
def talent_config(talent_graph, talent_template, talent_groups):
    """A ready-to-run generation configuration over the toy graph."""
    return GenerationConfig(
        talent_graph,
        talent_template,
        talent_groups,
        epsilon=0.3,
        lam=0.5,
        max_domain_values=8,
    )


@pytest.fixture(scope="session")
def triangle_graph():
    """A graph with a directed triangle plus a dangling path.

    Used by matcher tests: cyclic patterns exercise the backtracking path
    (arc consistency alone is not exact on cycles).
    """
    b = GraphBuilder("triangle")
    a0 = b.node("a", x=1)
    a1 = b.node("a", x=2)
    a2 = b.node("a", x=3)
    a3 = b.node("a", x=4)  # On a path, not on the triangle.
    b.edge(a0, a1, "e")
    b.edge(a1, a2, "e")
    b.edge(a2, a0, "e")
    b.edge(a3, a0, "e")
    return b.build()


@pytest.fixture(scope="session")
def small_lki_bundle():
    """A small but non-trivial LKI bundle (shared across tests)."""
    from repro.datasets import lki_bundle

    return lki_bundle(scale=0.12, coverage_total=6)


@pytest.fixture()
def small_lki_config(small_lki_bundle):
    b = small_lki_bundle
    return GenerationConfig(
        b.graph, b.template, b.groups, epsilon=0.1, max_domain_values=4
    )
