"""Algebraic invariants the work counters must satisfy on every run.

Baselines pin absolute numbers; these invariants pin the *accounting*: the
per-algorithm counters must partition the generated instances exactly, and
the evaluator/verifier counters must reconcile. An invariant violation
means an instrumentation bug (double count, missed branch) even when the
totals happen to match a baseline.
"""

from __future__ import annotations

import pytest

from repro import CBM, BiQGen, EnumQGen, Kungs, OnlineQGen, RfQGen
from repro.workload import random_instance_stream


def _counters(algo):
    return dict(algo.metrics.counters())


def _run(algo_cls, config):
    algo = algo_cls(config)
    algo.run()
    return _counters(algo)


def test_exhaustive_generators_verify_everything(talent_config):
    for algo_cls in (EnumQGen, Kungs, CBM):
        c = _run(algo_cls, talent_config)
        ns = f"gen.{algo_cls.name.lower()}"
        assert c[f"{ns}.verified"] == c[f"{ns}.generated"]
        assert c[f"{ns}.pruned"] == 0
        assert c[f"{ns}.feasible"] <= c[f"{ns}.generated"]


def test_rfqgen_partition(talent_config):
    c = _run(RfQGen, talent_config)
    ns = "gen.rfqgen"
    # Every generated instance is popped exactly once and lands in exactly
    # one bucket: duplicate, infeasible-pruned, or feasible.
    assert c[f"{ns}.generated"] == (
        c[f"{ns}.dedup_skipped"] + c[f"{ns}.pruned"] + c[f"{ns}.feasible"]
    )
    assert c[f"{ns}.pruned"] == c[f"{ns}.pruned_infeasible"]
    assert c[f"{ns}.archive_offers"] == c[f"{ns}.feasible"]
    assert c[f"{ns}.archive_updates"] <= c[f"{ns}.archive_offers"]


def test_biqgen_partition(talent_config):
    c = _run(BiQGen, talent_config)
    ns = "gen.biqgen"
    # Forward/backward pops partition into: duplicate, sandwich-pruned,
    # witness-pruned, infeasible (verified or subtree-pruned), feasible.
    assert c[f"{ns}.generated"] == (
        c[f"{ns}.dedup_skipped"]
        + c[f"{ns}.pruned_sandwich"]
        + c[f"{ns}.pruned_witness"]
        + c[f"{ns}.pruned_infeasible"]
        + c[f"{ns}.feasible"]
    )
    # Legacy `pruned` counts unverified skips only (sandwich + witness +
    # forward subtree prunes), so it is bounded by the sub-counters.
    assert c[f"{ns}.pruned"] <= (
        c[f"{ns}.pruned_sandwich"]
        + c[f"{ns}.pruned_witness"]
        + c[f"{ns}.pruned_infeasible"]
    )
    assert c[f"{ns}.archive_offers"] == c[f"{ns}.feasible"]


@pytest.mark.parametrize("algo_cls", [EnumQGen, RfQGen, BiQGen])
def test_verifier_accounting_reconciles(algo_cls, talent_config):
    algo = algo_cls(talent_config)
    algo.run()
    c = _counters(algo)
    ns = f"gen.{algo_cls.name.lower()}"
    # Verified instances are exactly the evaluator cache misses (the view
    # relationship RunStats is built on).
    assert c[f"{ns}.verified"] == c["evaluator.cache_misses"]
    assert c["evaluator.verify_calls"] == (
        c["evaluator.cache_hits"] + c["evaluator.cache_misses"]
    )
    assert c["evaluator.incremental"] <= c["evaluator.cache_misses"]
    assert c["evaluator.eval_calls"] == (
        c["evaluator.memo_hits"] + c["evaluator.verify_calls"]
    )


def test_online_accounting(talent_config):
    algo = OnlineQGen(talent_config, k=4, window=12)
    domains = talent_config.build_domains()
    algo.run(random_instance_stream(talent_config.template, domains, 40, seed=0))
    c = _counters(algo)
    ns = "gen.onlineqgen"
    assert c[f"{ns}.generated"] == 40
    # One evaluator call per stream instance.
    assert c["evaluator.eval_calls"] == c[f"{ns}.generated"]
    assert c["evaluator.verify_calls"] == (
        c["evaluator.cache_hits"] + c["evaluator.cache_misses"]
    )
    assert c[f"{ns}.feasible"] <= c[f"{ns}.generated"]
    assert c[f"{ns}.cached"] <= c[f"{ns}.feasible"]
