"""Counter-regression gate for the overlapping group-system path.

Runs one seeded multi-attribute scenario (gender × major conjunctions
over the toy talent graph, ``max`` aggregate) through a full BiQGen
generation and pins the resulting work counters — including the new
``groups.*`` construction counters — against a checked-in baseline.
Companion gate: the legacy disjoint baselines in this directory must keep
reproducing *without* any ``groups.*`` counter, so the generalization
provably costs legacy configs nothing.

Refresh after an intentional change with::

    PYTHONPATH=src python -m pytest tests/regression --update-baselines
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

import pytest

from repro import BiQGen
from repro.groups import system_from_dict
from repro.obs import MetricsRegistry
from repro.obs.baselines import compare_counters, load_baseline, save_baseline

BASELINE_DIR = Path(__file__).parent / "baselines"

# The pinned scenario: hand-written (not generator-drawn) so the baseline
# diff stays reviewable, but the same shape ScenarioGenerator emits —
# single-attribute groups plus a conjunction subset of its parent.
SCENARIO = {
    "aggregate": "max",
    "groups": [
        {"name": "F", "label": "person", "where": {"gender": "F"},
         "coverage": 1},
        {"name": "CS", "label": "person", "where": {"major": "CS"},
         "coverage": 1},
        {"name": "F&Biz", "label": "person",
         "where": {"gender": "F", "major": "Business"},
         "coverage": 1, "relax": 1},
    ],
}


def _run_scenario(talent_config):
    registry = MetricsRegistry()
    system = system_from_dict(
        SCENARIO, talent_config.graph, clamp=True, metrics=registry
    )
    config = replace(talent_config, groups=system, metrics=registry)
    BiQGen(config).run()
    return dict(registry.counters())


def test_overlapping_scenario_counters_match_baseline(
    talent_config, update_baselines
):
    counters = _run_scenario(talent_config)
    path = BASELINE_DIR / "group_system.json"
    if update_baselines:
        save_baseline(path, counters)
        pytest.skip(f"baseline rewritten: {path.name}")
    assert path.exists(), (
        f"missing baseline {path}; "
        "run: pytest tests/regression --update-baselines"
    )
    baseline = load_baseline(path)
    report = compare_counters(
        counters, baseline["counters"], baseline["tolerance"]
    )
    assert report.ok, report.describe()


def test_scenario_baseline_pins_group_construction():
    """The baseline must pin the groups.* counters exactly: 1 system,
    3 rules, and the conjunction's members double-counted in the index."""
    baseline = load_baseline(BASELINE_DIR / "group_system.json")
    counters = baseline["counters"]
    assert counters["groups.systems_built"] == 1
    assert counters["groups.rules_evaluated"] == 3
    assert counters["groups.multi_membership_nodes"] >= 1
    assert "gen.biqgen.generated" in counters


# Baselines of scenarios that *are* rule-built — the only ones allowed
# to carry groups.* counters.
RULE_BUILT_BASELINES = frozenset(
    {"group_system.json", "streaming_membership.json"}
)


def test_legacy_baselines_free_of_group_counters():
    """Disjoint configs never build rule systems: no legacy baseline may
    contain a groups.* counter (the byte-identity guarantee, counter side)."""
    for path in sorted(BASELINE_DIR.glob("*.json")):
        if path.name in RULE_BUILT_BASELINES:
            continue
        counters = load_baseline(path)["counters"]
        grouped = [name for name in counters if name.startswith("groups.")]
        assert grouped == [], f"{path.name} grew groups.* counters: {grouped}"
