"""Membership-churn counter regression gate (the surgical patch tier).

A fixed session — toy talent graph, a rule-built overlapping
``GroupSystem``, delta scoring on, 10 seeded membership-moving deltas —
pins the patch path's counters (``streaming.membership_moves``,
``groups.membership_repairs``, ``scoring.patched_entries``, and the
work they replace) against ``baselines/streaming_membership.json``.
Counter drift here means the repair tiering changed: lost surgical
patches show up as ``scoring.invalidated_entries`` growth, a broken
membership diff as ``streaming.full_rescores``.

The suite also guards the flip side: the *legacy* streaming baseline —
taken with a static ``GroupSet`` and delta scoring off — must stay free
of every patch-path counter, pinning the promise that default runs are
counter-silent and byte-identical.

Refresh after an intentional change with::

    PYTHONPATH=src python -m pytest tests/regression --update-baselines
"""

from __future__ import annotations

from pathlib import Path

from repro.core.evaluator import InstanceEvaluator
from repro.core.update import EpsilonParetoArchive
from repro.graph.builder import GraphBuilder
from repro.groups import GroupRule, system_from_rules
from repro.matching.delta import apply_delta
from repro.obs.baselines import compare_counters, load_baseline, save_baseline
from repro.query import Literal, Op, QueryTemplate
from repro.service.context import GraphContext
from repro.streaming import StreamingSession, graph_signature
from repro.workload import random_delta_stream

BASELINE_DIR = Path(__file__).parent / "baselines"
BASELINE = BASELINE_DIR / "streaming_membership.json"
LEGACY_BASELINE = BASELINE_DIR / "streaming.json"

#: Counters that exist only on the patch path — rule-built systems with
#: delta scoring; the legacy baseline must never contain any of them.
PATCH_PATH_COUNTERS = (
    "streaming.membership_moves",
    "groups.membership_repairs",
    "scoring.patched_entries",
)

OPTIONS = dict(epsilon=0.15, max_domain_values=4, use_delta_scoring=True)
GENERATE_COUNT = 24
GENERATE_SEED = 3
STREAM_COUNT = 10
STREAM_SEED = 7

RULES = [
    GroupRule("M", {"gender": "M"}, 1, label="person"),
    GroupRule("F", {"gender": "F"}, 1, label="person"),
    GroupRule("tech", {"major": ("CS", "Design")}, 1, label="person"),
]


def build_graph():
    b = GraphBuilder("talent-toy")
    b.node("org", name="smallco", employees=100)
    b.node("org", name="bigco", employees=1000)
    b.node("person", name="r1", title="analyst", yearsOfExp=5,
           gender="M", major="CS")
    b.node("person", name="r2", title="analyst", yearsOfExp=12,
           gender="F", major="Business")
    b.node("person", name="d1", title="director", yearsOfExp=15,
           gender="M", major="CS")
    b.node("person", name="d2", title="director", yearsOfExp=18,
           gender="F", major="Business")
    b.node("person", name="d3", title="director", yearsOfExp=20,
           gender="M", major="CS")
    b.node("person", name="d4", title="director", yearsOfExp=9,
           gender="F", major="Design")
    b.edge(2, 0, "worksAt")
    b.edge(3, 1, "worksAt")
    b.edge(2, 4, "recommend")
    b.edge(2, 5, "recommend")
    b.edge(2, 7, "recommend")
    b.edge(3, 5, "recommend")
    b.edge(3, 6, "recommend")
    return b.build()


def build_template():
    return (
        QueryTemplate.builder("toy-talent")
        .node("u0", "person", Literal("title", Op.EQ, "director"))
        .node("u1", "person")
        .node("u2", "org")
        .fixed_edge("u1", "u0", "recommend")
        .fixed_edge("u1", "u2", "worksAt")
        .range_var("xl1", "u1", "yearsOfExp", Op.GE)
        .range_var("xl2", "u2", "employees", Op.GE)
        .output("u0")
        .build()
    )


def archive_fingerprint(archive):
    return sorted(
        (box, ev.instance.instantiation.key, tuple(sorted(ev.matches)),
         ev.delta, ev.coverage, ev.feasible)
        for box, ev in archive.boxes().items()
    )


def run_stream(assert_identity=False):
    graph = build_graph()
    groups = system_from_rules(graph, RULES, clamp=True)
    session = StreamingSession(
        graph, build_template(), groups, **OPTIONS
    )
    session.generate(count=GENERATE_COUNT, seed=GENERATE_SEED)
    reference = build_graph() if assert_identity else None
    deltas = list(
        random_delta_stream(
            graph, count=STREAM_COUNT, seed=STREAM_SEED,
            edge_ops=1, attr_ops=2, attributes=["gender", "major"],
        )
    )
    for step, delta in enumerate(deltas):
        session.update(delta)
        if reference is None:
            continue
        reference = apply_delta(reference, delta)
        assert graph_signature(session.graph) == graph_signature(reference)
        context = GraphContext(reference)
        config = context.configure(
            build_template(),
            system_from_rules(reference, RULES, clamp=True),
            **OPTIONS,
        )
        evaluator = InstanceEvaluator(config)
        cold = EpsilonParetoArchive(config.epsilon)
        for instance in session.ledger_instances():
            evaluated = evaluator.evaluate(instance)
            if evaluated.feasible:
                cold.offer(evaluated)
        assert archive_fingerprint(session.archive) == archive_fingerprint(
            cold
        ), f"archive drifted from cold rebuild at step {step}"
    return session


def test_membership_counters_match_baseline(update_baselines):
    session = run_stream()
    counters = dict(session.metrics.counters())
    if update_baselines:
        save_baseline(BASELINE, counters)
        import pytest

        pytest.skip(f"baseline rewritten: {BASELINE.name}")
    assert BASELINE.exists(), (
        f"missing baseline {BASELINE}; "
        "run: pytest tests/regression --update-baselines"
    )
    baseline = load_baseline(BASELINE)
    report = compare_counters(
        counters, baseline["counters"], baseline["tolerance"]
    )
    assert report.ok, report.describe()


def test_baseline_pins_patch_path_headliners():
    """The baseline must carry the counters the patch claim rests on."""
    counters = load_baseline(BASELINE)["counters"]
    for name in PATCH_PATH_COUNTERS:
        assert name in counters
    # The surgical tier actually engages: memberships move, entries get
    # patched rather than dropped, and the diffs never escalate the
    # stream into full-rescore cascades.
    assert counters["streaming.membership_moves"] > 0
    assert counters["scoring.patched_entries"] > 0
    assert counters["groups.membership_repairs"] == STREAM_COUNT
    assert (
        counters["streaming.full_rescores"]
        < counters["streaming.deltas_applied"]
    )


def test_legacy_baseline_free_of_patch_counters():
    """Static-GroupSet streams must never register patch-path counters —
    the default path stays counter-silent and its baseline byte-stable."""
    counters = load_baseline(LEGACY_BASELINE)["counters"]
    for name in PATCH_PATH_COUNTERS:
        assert name not in counters, (
            f"{name} leaked into the legacy streaming baseline"
        )


def test_membership_stream_matches_cold_rebuild():
    """The CI membership-churn smoke: 10 updates, identity at every step."""
    run_stream(assert_identity=True)
