"""Metamorphic guarantee: observability must never change results.

Attaching a metrics registry (via ``config.metrics`` and/or an ambient
``collecting`` block) is pure observation — the generated archives must be
bit-identical to an unobserved run. If instrumentation ever leaks into
control flow (e.g. a counter guard short-circuiting a prune), these tests
catch it without needing to know *which* counter went wrong.
"""

from __future__ import annotations

import pytest

from repro import CBM, BiQGen, EnumQGen, Kungs, RfQGen
from repro.obs import MetricsRegistry, collecting


def _fingerprint(result):
    """Order-sensitive, exact fingerprint of a GenerationResult archive."""
    return [
        (e.instance.instantiation.key, frozenset(e.matches), e.delta, e.coverage)
        for e in result.instances
    ]


@pytest.mark.parametrize("algo_cls", [EnumQGen, Kungs, CBM, RfQGen, BiQGen])
def test_observed_run_is_bit_identical(algo_cls, talent_config):
    plain = algo_cls(talent_config).run()

    attached = MetricsRegistry()
    talent_config.metrics = attached
    try:
        with collecting() as ambient:
            observed = algo_cls(talent_config).run()
    finally:
        talent_config.metrics = None

    assert _fingerprint(observed) == _fingerprint(plain)
    assert observed.epsilon == plain.epsilon
    # The observation side-channel actually carried data.
    ns = f"gen.{algo_cls.name.lower()}"
    assert attached.value(f"{ns}.generated") > 0
    assert ambient.value(f"{ns}.generated") == attached.value(f"{ns}.generated")


@pytest.mark.parametrize("algo_cls", [RfQGen, BiQGen])
def test_stats_unchanged_by_observation(algo_cls, talent_config):
    """Legacy RunStats (now a registry view) must report the same work."""
    plain = algo_cls(talent_config).run()
    talent_config.metrics = MetricsRegistry()
    try:
        observed = algo_cls(talent_config).run()
    finally:
        talent_config.metrics = None
    for attr in ("generated", "verified", "incremental", "pruned", "feasible"):
        assert getattr(observed.stats, attr) == getattr(plain.stats, attr)
