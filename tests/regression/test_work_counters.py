"""Deterministic work-counter regression gates (the flagship obs consumer).

Each generator runs on the toy talent configuration — a hand-checkable
graph, so any counter drift means the *algorithm* changed, not the data —
and its per-run metrics registry is compared against a checked-in baseline
with an explicit relative tolerance. Wall-clock never enters the
comparison; only counted work does, which is stable across machines.

Refresh after an intentional algorithmic change with::

    PYTHONPATH=src python -m pytest tests/regression --update-baselines

and review the baseline diff like any other code change: the deltas *are*
the perf claim (e.g. BiQGen's sandwich pruning showing up as a lower
``gen.biqgen.verified`` relative to ``gen.enumqgen.verified``).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import CBM, BiQGen, EnumQGen, Kungs, OnlineQGen, RfQGen
from repro.obs.baselines import compare_counters, load_baseline, save_baseline
from repro.workload import random_instance_stream

BASELINE_DIR = Path(__file__).parent / "baselines"

# OnlineQGen inputs: a seeded random stream keeps the run bit-reproducible.
STREAM_COUNT = 40
STREAM_SEED = 0


def _run_offline(algo_cls, config):
    algo = algo_cls(config)
    algo.run()
    return dict(algo.metrics.counters())


def _run_online(config):
    algo = OnlineQGen(config, k=4, window=12)
    domains = config.build_domains()
    algo.run(
        random_instance_stream(
            config.template, domains, STREAM_COUNT, seed=STREAM_SEED
        )
    )
    return dict(algo.metrics.counters())


RUNNERS = {
    "enumqgen": lambda cfg: _run_offline(EnumQGen, cfg),
    "kungs": lambda cfg: _run_offline(Kungs, cfg),
    "cbm": lambda cfg: _run_offline(CBM, cfg),
    "rfqgen": lambda cfg: _run_offline(RfQGen, cfg),
    "biqgen": lambda cfg: _run_offline(BiQGen, cfg),
    "onlineqgen": _run_online,
}


@pytest.mark.parametrize("name", sorted(RUNNERS))
def test_work_counters_match_baseline(name, talent_config, update_baselines):
    counters = RUNNERS[name](talent_config)
    path = BASELINE_DIR / f"{name}.json"
    if update_baselines:
        save_baseline(path, counters)
        pytest.skip(f"baseline rewritten: {path.name}")
    assert path.exists(), (
        f"missing baseline {path}; "
        "run: pytest tests/regression --update-baselines"
    )
    baseline = load_baseline(path)
    report = compare_counters(
        counters, baseline["counters"], baseline["tolerance"]
    )
    assert report.ok, report.describe()


def test_baselines_cover_headline_counters():
    """Every baseline must pin the counters the paper's claims rest on."""
    for name in ("enumqgen", "rfqgen", "biqgen"):
        baseline = load_baseline(BASELINE_DIR / f"{name}.json")
        counters = baseline["counters"]
        for suffix in ("generated", "verified", "pruned", "feasible"):
            assert f"gen.{name}.{suffix}" in counters
        assert "evaluator.cache_misses" in counters
        assert "matcher.match_calls" in counters


def test_pruning_hierarchy_in_baselines():
    """The checked-in numbers must themselves reproduce Fig. 10's ordering:
    both pruning algorithms verify strictly less than exhaustive EnumQGen."""
    verified = {
        name: load_baseline(BASELINE_DIR / f"{name}.json")["counters"][
            f"gen.{name}.verified"
        ]
        for name in ("enumqgen", "rfqgen", "biqgen")
    }
    assert verified["rfqgen"] < verified["enumqgen"]
    assert verified["biqgen"] < verified["enumqgen"]


def test_perturbed_baseline_fails(talent_config):
    """The gate must actually gate: drift beyond tolerance is a failure."""
    counters = RUNNERS["rfqgen"](talent_config)
    baseline = load_baseline(BASELINE_DIR / "rfqgen.json")
    perturbed = dict(baseline["counters"])
    key = "gen.rfqgen.generated"
    assert key in perturbed
    perturbed[key] = perturbed[key] * 2 + 10
    report = compare_counters(counters, perturbed, baseline["tolerance"])
    assert not report.ok
    assert any(m.name == key for m in report.mismatches)


def test_missing_counter_is_a_mismatch(talent_config):
    """Deleting instrumentation silently would defeat the suite."""
    counters = RUNNERS["rfqgen"](talent_config)
    baseline = load_baseline(BASELINE_DIR / "rfqgen.json")
    augmented = dict(baseline["counters"])
    augmented["gen.rfqgen.nonexistent_counter"] = 7
    report = compare_counters(counters, augmented, baseline["tolerance"])
    assert any(m.name == "gen.rfqgen.nonexistent_counter" for m in report.mismatches)
