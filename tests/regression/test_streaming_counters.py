"""Streaming work-counter regression gate plus a mid-stream chaos case.

A fixed session — toy talent graph, 24 generated instances, 8 seeded
mixed deltas — pins every ``streaming.*`` counter (and the evaluator /
matcher work it induces) against a checked-in baseline. Counter drift
here means the incremental repair *algorithm* changed: a wider influence
ball shows up as ``streaming.recheck_pool_nodes`` growth, a lost
score-repair tier as ``streaming.full_rescores``.

Refresh after an intentional change with::

    PYTHONPATH=src python -m pytest tests/regression --update-baselines

The chaos case reuses the runtime ``FaultInjector`` to poison a repair
mid-stream and asserts the session recovers onto the exact cold-rebuild
archive — the differential invariant must survive the fault path too.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.evaluator import InstanceEvaluator
from repro.core.update import EpsilonParetoArchive
from repro.graph.builder import GraphBuilder
from repro.groups import GroupSet, NodeGroup
from repro.matching.delta import apply_delta
from repro.obs.baselines import compare_counters, load_baseline, save_baseline
from repro.query import Literal, Op, QueryTemplate
from repro.runtime.faults import FaultInjector, FaultKind, FaultSpec
from repro.service.context import GraphContext
from repro.streaming import StreamingSession
from repro.workload import random_delta_stream

BASELINE_DIR = Path(__file__).parent / "baselines"
BASELINE = BASELINE_DIR / "streaming.json"

OPTIONS = dict(epsilon=0.15, max_domain_values=4)
GENERATE_COUNT = 24
GENERATE_SEED = 3
STREAM_COUNT = 8
STREAM_SEED = 11


def build_graph():
    b = GraphBuilder("talent-toy")
    b.node("org", name="smallco", employees=100)
    b.node("org", name="bigco", employees=1000)
    b.node("person", name="r1", title="analyst", yearsOfExp=5,
           gender="M", major="CS")
    b.node("person", name="r2", title="analyst", yearsOfExp=12,
           gender="F", major="Business")
    b.node("person", name="d1", title="director", yearsOfExp=15,
           gender="M", major="CS")
    b.node("person", name="d2", title="director", yearsOfExp=18,
           gender="F", major="Business")
    b.node("person", name="d3", title="director", yearsOfExp=20,
           gender="M", major="CS")
    b.node("person", name="d4", title="director", yearsOfExp=9,
           gender="F", major="Design")
    b.edge(2, 0, "worksAt")
    b.edge(3, 1, "worksAt")
    b.edge(2, 4, "recommend")
    b.edge(2, 5, "recommend")
    b.edge(2, 7, "recommend")
    b.edge(3, 5, "recommend")
    b.edge(3, 6, "recommend")
    return b.build()


def build_template():
    return (
        QueryTemplate.builder("toy-talent")
        .node("u0", "person", Literal("title", Op.EQ, "director"))
        .node("u1", "person")
        .node("u2", "org")
        .fixed_edge("u1", "u0", "recommend")
        .fixed_edge("u1", "u2", "worksAt")
        .range_var("xl1", "u1", "yearsOfExp", Op.GE)
        .range_var("xl2", "u2", "employees", Op.GE)
        .output("u0")
        .build()
    )


def build_groups():
    return GroupSet(
        [
            NodeGroup("M", frozenset({4, 6}), 1),
            NodeGroup("F", frozenset({5, 7}), 1),
        ]
    )


def run_stream(faults=None):
    graph = build_graph()
    session = StreamingSession(
        graph, build_template(), build_groups(), faults=faults, **OPTIONS
    )
    session.generate(count=GENERATE_COUNT, seed=GENERATE_SEED)
    deltas = list(
        random_delta_stream(
            graph, count=STREAM_COUNT, seed=STREAM_SEED, edge_ops=2, attr_ops=1
        )
    )
    reports = [session.update(delta) for delta in deltas]
    return session, deltas, reports


def archive_fingerprint(archive):
    return sorted(
        (box, ev.instance.instantiation.key, tuple(sorted(ev.matches)),
         ev.delta, ev.coverage, ev.feasible)
        for box, ev in archive.boxes().items()
    )


def test_streaming_counters_match_baseline(update_baselines):
    session, _, _ = run_stream()
    counters = dict(session.metrics.counters())
    if update_baselines:
        save_baseline(BASELINE, counters)
        import pytest

        pytest.skip(f"baseline rewritten: {BASELINE.name}")
    assert BASELINE.exists(), (
        f"missing baseline {BASELINE}; "
        "run: pytest tests/regression --update-baselines"
    )
    baseline = load_baseline(BASELINE)
    report = compare_counters(
        counters, baseline["counters"], baseline["tolerance"]
    )
    assert report.ok, report.describe()


def test_baseline_pins_streaming_headliners():
    """The baseline must cover the counters the streaming claim rests on."""
    counters = load_baseline(BASELINE)["counters"]
    for suffix in (
        "deltas_applied",
        "instances_rechecked",
        "instances_skipped",
        "scores_kept",
        "full_rescores",
    ):
        assert f"streaming.{suffix}" in counters
    # Incrementality, pinned: edge-only deltas keep scores verbatim
    # instead of rescoring, and full rescore cascades stay rare. (On the
    # toy graph the diameter-2 influence ball reaches every node, so the
    # skip counter is exercised by the unit suite on sparser graphs.)
    assert counters["streaming.scores_kept"] > 0
    assert (
        counters["streaming.full_rescores"]
        < counters["streaming.deltas_applied"]
    )


def test_clean_run_has_no_fallbacks():
    session, _, reports = run_stream()
    counters = session.metrics.counters()
    assert counters["streaming.fault_recoveries"] == 0
    assert counters["streaming.budget_fallbacks"] == 0
    assert all(r.recovered is None for r in reports)


def test_chaos_mid_stream_recovers_onto_cold_rebuild():
    """An injected evaluator fault during update 3's repair loop must be
    absorbed: the session falls back to a cold re-evaluation and the final
    archive still matches a from-scratch build on the final graph."""
    faults = FaultInjector([FaultSpec(FaultKind.ERROR, batch_index=3)])
    session, deltas, reports = run_stream(faults=faults)
    assert reports[3].recovered == "fault"
    assert session.metrics.counters()["streaming.fault_recoveries"] == 1

    final = build_graph()
    for delta in deltas:
        final = apply_delta(final, delta)
    context = GraphContext(final)
    config = context.configure(build_template(), build_groups(), **OPTIONS)
    evaluator = InstanceEvaluator(config)
    cold = EpsilonParetoArchive(config.epsilon)
    for instance in session.ledger_instances():
        evaluated = evaluator.evaluate(instance)
        if evaluated.feasible:
            cold.offer(evaluated)
    assert archive_fingerprint(session.archive) == archive_fingerprint(cold)
