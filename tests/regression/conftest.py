"""Regression-suite plumbing: the ``--update-baselines`` refresh flag.

The option is registered here (not in the repo-root conftest) so it only
exists when the regression directory is part of the initial command line,
e.g. ``pytest tests/regression --update-baselines``. The fixture degrades
gracefully when the option was never registered (plain ``pytest`` runs).
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-baselines",
        action="store_true",
        default=False,
        help="Rewrite tests/regression/baselines/*.json from the current run",
    )


@pytest.fixture(scope="session")
def update_baselines(request) -> bool:
    try:
        return bool(request.config.getoption("--update-baselines"))
    except ValueError:
        return False
