"""Deterministic truncation regression gates.

Budget-truncated runs must be *reproducible*: with an injectable
:class:`~repro.runtime.budget.TickingClock` (time = pure function of
checkpoint count) or an instance cap, the same budget trips at the same
checkpoint on every run, so the partial archive and the work counters
are as pinnable as any unbudgeted run's. These tests pin both:

* two identical budgeted runs produce byte-identical archives/counters;
* the counters of canonical truncated runs match checked-in baselines
  (refresh with ``pytest tests/regression --update-baselines``);
* the unbudgeted counter baselines in ``test_work_counters.py`` stay
  free of any ``runtime.*`` counters — the inert-guard guarantee.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import BiQGen, EnumQGen, RfQGen
from repro.obs.baselines import compare_counters, load_baseline, save_baseline
from repro.runtime import Budget, TickingClock

BASELINE_DIR = Path(__file__).parent / "baselines"

# Canonical budgets over the toy talent configuration: small enough to
# truncate (the unbudgeted runs verify ~24 instances), deterministic by
# construction.
TRUNCATION_RUNS = {
    "truncation_biqgen_deadline": lambda cfg: BiQGen(
        cfg.with_budget(Budget(deadline_seconds=0.05, clock=TickingClock(tick=0.002)))
    ),
    "truncation_enumqgen_instances": lambda cfg: EnumQGen(
        cfg.with_budget(Budget(max_instances=8))
    ),
    "truncation_rfqgen_instances": lambda cfg: RfQGen(
        cfg.with_budget(Budget(max_instances=6))
    ),
}


def _run(name, config):
    algo = TRUNCATION_RUNS[name](config)
    result = algo.run()
    return algo, result


@pytest.mark.parametrize("name", sorted(TRUNCATION_RUNS))
def test_truncated_counters_match_baseline(name, talent_config, update_baselines):
    algo, result = _run(name, talent_config)
    assert result.truncated, "budget was expected to trip on the toy config"
    counters = dict(algo.metrics.counters())
    path = BASELINE_DIR / f"{name}.json"
    if update_baselines:
        save_baseline(path, counters)
        pytest.skip(f"baseline rewritten: {path.name}")
    assert path.exists(), (
        f"missing baseline {path}; "
        "run: pytest tests/regression --update-baselines"
    )
    baseline = load_baseline(path)
    report = compare_counters(counters, baseline["counters"], baseline["tolerance"])
    assert report.ok, report.describe()


@pytest.mark.parametrize("name", sorted(TRUNCATION_RUNS))
def test_truncated_runs_are_reproducible(name, talent_config):
    """Same budget, same config → identical archive and identical counters."""
    algo_a, result_a = _run(name, talent_config)
    algo_b, result_b = _run(name, talent_config)
    assert [p.objectives for p in result_a.instances] == [
        p.objectives for p in result_b.instances
    ]
    assert result_a.stats.truncation_reason == result_b.stats.truncation_reason
    assert dict(algo_a.metrics.counters()) == dict(algo_b.metrics.counters())


def test_truncated_baselines_carry_runtime_counters():
    """The pinned truncated runs must show the budget machinery at work."""
    for name in TRUNCATION_RUNS:
        baseline = load_baseline(BASELINE_DIR / f"{name}.json")
        counters = baseline["counters"]
        assert counters.get("runtime.budget.trips") == 1, name
        assert counters.get("runtime.budget.checks", 0) > 0, name


def test_truncated_work_bounded_by_unbudgeted_baselines():
    """A truncated run can never do more verification work than the
    unbudgeted baseline of the same algorithm."""
    pairs = {
        "truncation_biqgen_deadline": "biqgen",
        "truncation_enumqgen_instances": "enumqgen",
        "truncation_rfqgen_instances": "rfqgen",
    }
    for truncated_name, full_name in pairs.items():
        truncated = load_baseline(BASELINE_DIR / f"{truncated_name}.json")["counters"]
        full = load_baseline(BASELINE_DIR / f"{full_name}.json")["counters"]
        assert (
            truncated["evaluator.cache_misses"] <= full["evaluator.cache_misses"]
        ), truncated_name


def test_unbudgeted_baselines_have_no_runtime_counters():
    """The inert-guard guarantee, pinned: adding the budget layer must not
    have touched the unbudgeted counter baselines."""
    for name in ("enumqgen", "kungs", "cbm", "rfqgen", "biqgen", "onlineqgen"):
        baseline = load_baseline(BASELINE_DIR / f"{name}.json")
        runtime_counters = [
            n for n in baseline["counters"] if n.startswith("runtime.")
        ]
        assert not runtime_counters, (name, runtime_counters)


def test_unbudgeted_run_registers_no_runtime_counters(talent_config):
    """Live version of the same guarantee, against the current code."""
    algo = BiQGen(talent_config)
    algo.run()
    assert not any(n.startswith("runtime.") for n in algo.metrics.counters())
