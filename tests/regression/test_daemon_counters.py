"""Daemon work-counter regression gate plus a mid-chaos recovery case.

A fixed workload — toy talent graph, one worker, a deterministic mix of
tenants, SLO classes, duplicates, a malformed line and a forced
queue-full shed — pins every ``service.daemon.*`` / ``service.admission.*``
counter (and the generation work absorbed from the worker registry)
against a checked-in baseline. Counter drift here means the serving
*policy* changed: a different DRR rotation shows up as admission order
churn, a lost dedup tier as ``service.daemon.deduplicated`` going to
zero, a widened retry loop as ``service.daemon.retries`` growth.

Determinism notes: one worker serializes execution; only wall-clock-free
budgets (explicit ``max_instances``) and deadline-free SLO classes
(``batch``) appear, so no counter depends on timing; ``counters()``
excludes histograms.

Refresh after an intentional change with::

    PYTHONPATH=src python -m pytest tests/regression --update-baselines

The chaos case injects an evaluator fault mid-workload and pins the
recovery counters too — outcomes must match the fault-free run exactly.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.obs.baselines import compare_counters, load_baseline, save_baseline
from repro.runtime.faults import FaultInjector, FaultKind, FaultSpec
from repro.service.daemon import ServingDaemon
from repro.service.requests import GenerationRequest, outcome_to_dict
from repro.session import BatchSession

from tests.regression.test_streaming_counters import (
    build_graph,
    build_groups,
    build_template,
)

BASELINE_DIR = Path(__file__).parent / "baselines"
BASELINE = BASELINE_DIR / "daemon.json"
CHAOS_BASELINE = BASELINE_DIR / "daemon_chaos.json"

OPTIONS = {"epsilon": 0.15, "options": {"max_domain_values": 4}}


def build_workload(template):
    """The pinned submission list (5 admitted + 1 shed + 2 rejected)."""
    def request(request_id, client, **kwargs):
        params = dict(OPTIONS)
        params.update(kwargs)
        return GenerationRequest(request_id, template, client=client, **params)

    return [
        request("a1", "alice"),
        request("a2", "alice", algorithm="rfqgen"),
        request("a3", "alice", max_instances=2),       # truncated partial
        request("a4", "alice"),                        # dedup twin of a1
        request("a5", "alice"),                        # shed: queue_depth=4
        request("b1", "bob", algorithm="enum", slo="batch"),
        "this is not json",                            # rejected
        '{"id": "b1", "unknown_key": 1}',              # rejected (bad key)
    ]


def run_daemon(faults=None, max_retries=2):
    graph = build_graph()
    daemon = ServingDaemon(
        graph,
        build_groups(),
        workers=1,
        queue_depth=4,
        max_retries=max_retries,
        default_template=build_template(),
        faults=faults,
    )
    try:
        outcomes = daemon.serve(build_workload(build_template()))
    finally:
        daemon.shutdown()
    return daemon, outcomes


def fingerprints(outcomes):
    rows = []
    for outcome in outcomes:
        payload = outcome_to_dict(outcome)
        payload.pop("elapsed_seconds", None)
        rows.append(payload)
    return rows


def check_baseline(path, counters, update_baselines):
    if update_baselines:
        save_baseline(path, counters)
        pytest.skip(f"baseline rewritten: {path.name}")
    assert path.exists(), (
        f"missing baseline {path}; "
        "run: pytest tests/regression --update-baselines"
    )
    baseline = load_baseline(path)
    report = compare_counters(
        counters, baseline["counters"], baseline["tolerance"]
    )
    assert report.ok, report.describe()


def test_daemon_counters_match_baseline(update_baselines):
    daemon, outcomes = run_daemon()
    assert len(outcomes) == 8
    check_baseline(BASELINE, dict(daemon.metrics.counters()), update_baselines)


def test_chaos_counters_match_baseline_and_outcomes_recover(update_baselines):
    """An injected evaluator fault on submission 1 must be retried away:
    outcomes identical to the fault-free run, recovery visible only in
    the retry counters."""
    _, clean = run_daemon()
    faults = FaultInjector([FaultSpec(FaultKind.ERROR, batch_index=1)])
    daemon, chaotic = run_daemon(faults=faults)
    assert fingerprints(chaotic) == fingerprints(clean)
    counters = dict(daemon.metrics.counters())
    assert counters["service.daemon.retries"] == 1
    check_baseline(CHAOS_BASELINE, counters, update_baselines)


def test_baseline_pins_daemon_headliners():
    """The baseline must cover the counters the serving claims rest on."""
    counters = load_baseline(BASELINE)["counters"]
    for name in (
        "service.daemon.requests",
        "service.daemon.completed",
        "service.daemon.deduplicated",
        "service.daemon.truncated",
        "service.daemon.shed",
        "service.requests.rejected",
        "service.admission.admitted",
        "service.admission.shed.queue_full",
    ):
        assert name in counters, name
    assert counters["service.daemon.requests"] == 6
    # a1, a2, a3, b1 execute; a4 replays (dedup); a5 is shed.
    assert counters["service.daemon.completed"] == 4
    assert counters["service.daemon.deduplicated"] == 1
    assert counters["service.daemon.shed"] == 1
    assert counters["service.requests.rejected"] == 2
    # Worker generation work is absorbed next to the serving counters so
    # one snapshot tells the whole story.
    assert any(name.startswith("gen.") for name in counters)
    # The fault-free and chaos runs may differ only in retry accounting.
    chaos = load_baseline(CHAOS_BASELINE)["counters"]
    differing = {
        name
        for name in set(counters) | set(chaos)
        if counters.get(name, 0) != chaos.get(name, 0)
    }
    assert "service.daemon.retries" in differing
    assert all(
        name.startswith(("service.daemon.retries", "evaluator.", "matcher.",
                         "gen.", "runtime."))
        for name in differing
    ), differing


def test_default_serving_path_stays_counter_silent():
    """The daemon is opt-in: a plain batch session registers none of the
    ``service.daemon.*`` / ``service.admission.*`` counters, keeping the
    default path's snapshots byte-identical to previous releases."""
    session = BatchSession(
        build_graph(), build_groups(), max_domain_values=4
    )
    request = GenerationRequest("r1", build_template(), epsilon=0.15)
    outcomes = session.run([request])
    assert outcomes[0].ok
    for name in session.metrics.counters():
        assert not name.startswith("service.daemon.")
        assert not name.startswith("service.admission.")
