"""Differential guarantees for generalized group systems.

Three contracts, all exact (``==`` on archive fingerprints, floats
included):

* **legacy equivalence** — running any generator with the paper's
  disjoint groups wrapped in a plain :class:`GroupSystem` produces the
  same archive, byte for byte, as the legacy :class:`GroupSet`, across
  matcher engines and the delta-scoring knob;
* **delta neutrality on overlap** — for genuinely overlapping systems
  (where a node moves several counters at once) delta scoring still
  changes only the work, never the results;
* **scenario replay** — seeded scenario specs rebuild identical systems
  and identical archives run-to-run (the property CI smoke jobs and the
  counter baseline rely on).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import BiQGen, EnumQGen, GenerationConfig, RfQGen, StreamingSession
from repro.graph.builder import GraphBuilder
from repro.groups import (
    GroupRule,
    GroupSet,
    GroupSystem,
    NodeGroup,
    system_from_dict,
    system_from_rules,
)
from repro.matching.delta import GraphDelta
from repro.workload.scenarios import ScenarioGenerator

ALGORITHMS = [EnumQGen, RfQGen, BiQGen]


def _fingerprint(result):
    """Order-sensitive, exact archive fingerprint (floats compared by ==)."""
    return [
        (e.instance.instantiation.key, frozenset(e.matches), e.delta, e.coverage,
         e.feasible)
        for e in result.instances
    ]


def overlapping_groups(graph):
    """Gender × major rules over the talent graph: F ⊇ (F ∩ Business)."""
    return system_from_rules(
        graph,
        [
            GroupRule("F", where={"gender": "F"}, coverage=1,
                      label="person"),
            GroupRule("CS", where={"major": "CS"}, coverage=1, label="person"),
            GroupRule("F&Biz", where={"gender": "F", "major": "Business"},
                      coverage=1, relax=1, label="person"),
        ],
        aggregate="max",
    )


@pytest.mark.parametrize("algo_cls", ALGORITHMS)
@pytest.mark.parametrize("engine", ["set", "bitset", "columnar"])
@pytest.mark.parametrize("delta", [False, True])
def test_disjoint_system_equals_group_set(algo_cls, engine, delta, talent_config):
    """The tentpole contract: GroupSystem(disjoint) ≡ GroupSet, bitwise."""
    legacy_config = replace(
        talent_config, matcher_engine=engine, use_delta_scoring=delta
    )
    groups = talent_config.groups
    general = GroupSystem(list(groups), aggregate="l1")
    assert general.is_disjoint
    general_config = replace(legacy_config, groups=general)
    legacy = algo_cls(legacy_config).run()
    generalized = algo_cls(general_config).run()
    assert _fingerprint(generalized) == _fingerprint(legacy)
    assert generalized.epsilon == legacy.epsilon


@pytest.mark.parametrize("algo_cls", ALGORITHMS)
@pytest.mark.parametrize("engine", ["set", "bitset"])
def test_overlapping_delta_scoring_neutral(algo_cls, engine, talent_config):
    """Delta scoring may not shift results when counters overlap."""
    system = overlapping_groups(talent_config.graph)
    assert not system.is_disjoint
    base = replace(talent_config, groups=system, matcher_engine=engine)
    plain = algo_cls(base).run()
    delta = algo_cls(replace(base, use_delta_scoring=True)).run()
    assert _fingerprint(delta) == _fingerprint(plain)


@pytest.mark.parametrize("aggregate", ["l1", "max", "weighted"])
def test_aggregates_run_end_to_end(aggregate, talent_config):
    """Every aggregate drives a full generator run; archives stay sane."""
    system = system_from_rules(
        talent_config.graph,
        [
            GroupRule("F", where={"gender": "F"}, coverage=1, label="person",
                      weight=2.0),
            GroupRule("M", where={"gender": "M"}, coverage=1, label="person"),
            GroupRule("CS", where={"major": "CS"}, coverage=1, label="person"),
        ],
        aggregate=aggregate,
    )
    result = BiQGen(replace(talent_config, groups=system)).run()
    assert result.instances
    bound = float(system.quality_bound)
    for point in result.instances:
        assert 0.0 <= point.coverage <= bound


def _mutable_talent_graph():
    """Fresh talent-toy graph per call (streaming mutates in place)."""
    b = GraphBuilder("talent-toy")
    b.node("org", name="smallco", employees=100)
    b.node("org", name="bigco", employees=1000)
    b.node("person", name="r1", title="analyst", yearsOfExp=5,
           gender="M", major="CS")
    b.node("person", name="r2", title="analyst", yearsOfExp=12,
           gender="F", major="Business")
    b.node("person", name="d1", title="director", yearsOfExp=15,
           gender="M", major="CS")
    b.node("person", name="d2", title="director", yearsOfExp=18,
           gender="F", major="Business")
    b.node("person", name="d3", title="director", yearsOfExp=20,
           gender="M", major="CS")
    b.node("person", name="d4", title="director", yearsOfExp=9,
           gender="F", major="Design")
    b.edge(2, 0, "worksAt")
    b.edge(3, 1, "worksAt")
    b.edge(2, 4, "recommend")
    b.edge(2, 5, "recommend")
    b.edge(2, 7, "recommend")
    b.edge(3, 5, "recommend")
    b.edge(3, 6, "recommend")
    return b.build()


def _archive_fingerprint(archive):
    return sorted(
        (
            box,
            ev.instance.instantiation.key,
            tuple(sorted(ev.matches)),
            ev.delta,
            ev.coverage,
            ev.feasible,
        )
        for box, ev in archive.boxes().items()
    )


def test_streaming_maintenance_identical_under_both_containers(talent_template):
    """Live-graph maintenance is container-agnostic for disjoint groups."""
    containers = {
        "legacy": GroupSet(
            [NodeGroup("M", frozenset({4, 6}), 1),
             NodeGroup("F", frozenset({5, 7}), 1)]
        ),
        "general": GroupSystem(
            [NodeGroup("M", frozenset({4, 6}), 1),
             NodeGroup("F", frozenset({5, 7}), 1)]
        ),
    }
    deltas = [
        GraphDelta(insert_edges=((3, 7, "recommend"),)),
        GraphDelta(set_attributes=((4, "yearsOfExp", 16),)),
        GraphDelta(delete_edges=((2, 5, "recommend"),)),
    ]
    fingerprints = {}
    for name, groups in containers.items():
        session = StreamingSession(
            _mutable_talent_graph(), talent_template, groups,
            epsilon=0.15, max_domain_values=4,
        )
        session.generate(count=16, seed=3)
        steps = []
        for delta in deltas:
            session.update(delta)
            steps.append(_archive_fingerprint(session.archive))
        fingerprints[name] = steps
    assert fingerprints["legacy"] == fingerprints["general"]


class TestScenarioReplay:
    def test_systems_rebuild_identically(self, talent_graph):
        gen = ScenarioGenerator(
            talent_graph, "person", ("gender", "major"), seed=11
        )
        specs = gen.specs(4)
        again = ScenarioGenerator(
            talent_graph, "person", ("gender", "major"), seed=11
        ).specs(4)
        assert specs == again
        for spec in specs:
            a = system_from_dict(spec, talent_graph, clamp=True)
            b = system_from_dict(spec, talent_graph, clamp=True)
            assert a.names == b.names
            assert a.aggregate == b.aggregate
            assert [g.members for g in a] == [g.members for g in b]
            assert [(g.coverage, g.relax) for g in a] == [
                (g.coverage, g.relax) for g in b
            ]

    def test_scenario_archives_replay(self, talent_config):
        """Same spec → same archive, across independent materializations."""
        gen = ScenarioGenerator(
            talent_config.graph, "person", ("gender", "major"), seed=5
        )
        spec = gen.spec(0)
        runs = []
        for _ in range(2):
            system = system_from_dict(spec, talent_config.graph, clamp=True)
            runs.append(RfQGen(replace(talent_config, groups=system)).run())
        assert _fingerprint(runs[0]) == _fingerprint(runs[1])
