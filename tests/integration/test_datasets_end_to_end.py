"""End-to-end: every dataset bundle drives every main algorithm."""

import pytest

from repro import BiQGen, EnumQGen, GenerationConfig, Kungs, OnlineQGen, RfQGen
from repro.core.pareto import dominates
from repro.datasets import dataset_bundle, dataset_names
from repro.workload import drifting_instance_stream


@pytest.fixture(scope="module", params=list(dataset_names()))
def bundle(request):
    return dataset_bundle(request.param, scale=0.1, coverage_total=6)


@pytest.fixture(scope="module")
def config(bundle):
    return GenerationConfig(
        bundle.graph, bundle.template, bundle.groups, epsilon=0.1,
        max_domain_values=4,
    )


class TestAllDatasets:
    @pytest.mark.parametrize("algorithm_cls", [EnumQGen, Kungs, RfQGen, BiQGen])
    def test_generation_produces_feasible_sets(self, config, algorithm_cls):
        result = algorithm_cls(config).run()
        assert result.instances, f"{algorithm_cls.__name__} found nothing feasible"
        for point in result.instances:
            assert config.groups.is_feasible(point.matches)

    def test_returned_sets_mutually_consistent(self, config):
        """No algorithm's pick is dominated by another algorithm's pick."""
        results = {
            cls.__name__: cls(config).run().instances
            for cls in (Kungs, RfQGen, BiQGen)
        }
        exact = results["Kungs"]
        for name in ("RfQGen", "BiQGen"):
            for kept in results[name]:
                assert not any(dominates(p, kept) for p in exact), (
                    name,
                    kept,
                )

    def test_online_over_drifting_stream(self, config):
        """OnlineQGen stays within k and monotone-ε on a drifting stream."""
        online = OnlineQGen(config, k=4, window=10, snapshot_every=20)
        stream = drifting_instance_stream(
            config.template, online.lattice.domains, 80, seed=3
        )
        result = online.run(stream)
        assert len(result) <= 4
        epsilons = [s.epsilon for s in online.snapshots]
        assert epsilons == sorted(epsilons)
