"""Replays of the paper's worked examples (Examples 4, 5 and 7).

Example 4/5 give four instances with coordinates
``q1=(0,1), q2=(1,1), q3=(0.75,2), q4=(0.5,3)`` and ε = 0.3. The paper
computes: Pareto set = {q2, q3, q4}; shifted boxing coordinates
``(2,2), (2,4), (1,5)``; and the ε-Pareto set {q3, q4} after Update drops
q2 (Example 7 walks the same Update trace). These tests replay all of it
through our machinery with ``shifted=True`` boxes (the formula the paper
prints — see DESIGN.md §5.2 for the strict-mode deviation).
"""

import pytest

from repro.core.kung import kung_front
from repro.core.pareto import Box, box_of, dominates, pareto_front
from repro.core.update import EpsilonParetoArchive, UpdateCase


class PaperPoint:
    def __init__(self, name, delta, coverage):
        self.name = name
        self.delta = delta
        self.coverage = coverage
        self.instance = name  # Identity for archive bookkeeping.

    def __repr__(self):
        return self.name


@pytest.fixture(scope="module")
def example_points():
    return {
        "q1": PaperPoint("q1", 0.0, 1.0),
        "q2": PaperPoint("q2", 1.0, 1.0),
        "q3": PaperPoint("q3", 0.75, 2.0),
        "q4": PaperPoint("q4", 0.5, 3.0),
    }


class TestExample5ParetoSet:
    def test_pareto_set_is_q2_q3_q4(self, example_points):
        points = list(example_points.values())
        front = {p.name for p in pareto_front(points)}
        assert front == {"q2", "q3", "q4"}
        assert front == {p.name for p in kung_front(points)}

    def test_q1_dominated_by_all_others(self, example_points):
        q = example_points
        for other in ("q2", "q3", "q4"):
            assert dominates(q[other], q["q1"])


class TestExample5BoxingCoordinates:
    def test_shifted_boxes_match_paper(self, example_points):
        """The paper's "boxing" coordinates: (2,2), (2,4), (1,5)."""
        q = example_points
        eps = 0.3
        assert box_of(q["q2"], eps, shifted=True) == Box(2, 2)
        assert box_of(q["q3"], eps, shifted=True) == Box(2, 4)
        assert box_of(q["q4"], eps, shifted=True) == Box(1, 5)

    def test_q3_box_dominates_q2_box(self, example_points):
        q = example_points
        b3 = box_of(q["q3"], 0.3, shifted=True)
        b2 = box_of(q["q2"], 0.3, shifted=True)
        assert b3.dominates(b2)

    def test_q3_q4_boxes_incomparable(self, example_points):
        q = example_points
        b3 = box_of(q["q3"], 0.3, shifted=True)
        b4 = box_of(q["q4"], 0.3, shifted=True)
        assert not b3.dominates(b4) and not b4.dominates(b3)


class TestExample7UpdateTrace:
    """The Update walk of Example 7: add q2, replace with q3, keep q4,
    reject q1, final set {q3, q4}."""

    def test_full_trace(self, example_points):
        q = example_points
        archive = EpsilonParetoArchive(0.3, shifted=True)
        assert archive.offer(q["q2"]) is UpdateCase.ADDED_BOX
        assert archive.offer(q["q3"]) is UpdateCase.REPLACED_BOXES
        assert {p.name for p in archive} == {"q3"}
        assert archive.offer(q["q4"]) is UpdateCase.ADDED_BOX
        assert archive.offer(q["q1"]) is UpdateCase.REJECTED
        assert {p.name for p in archive} == {"q3", "q4"}

    def test_arrival_order_invariance(self, example_points):
        import itertools

        q = example_points
        for order in itertools.permutations(["q1", "q2", "q3", "q4"]):
            archive = EpsilonParetoArchive(0.3, shifted=True)
            for name in order:
                archive.offer(q[name])
            assert {p.name for p in archive} == {"q3", "q4"}, order
