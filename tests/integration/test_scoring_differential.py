"""Differential guarantee: delta scoring must never change results.

``use_delta_scoring`` flips *how* (δ, f) are computed — state maintenance
along lattice edges plus a fingerprint cache — but the contract is bitwise
equality with from-scratch scoring. These tests run full generator runs
with the knob on and off, across both matcher engines, and compare the
archives exactly (instantiation keys, match sets, and the float δ/f
coordinates with ``==``). They also pin the baseline-safety property:
with the knob off, no ``scoring.*`` counter may appear in a run snapshot.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import (
    CBM,
    BiQGen,
    EnumQGen,
    GenerationConfig,
    GroupSet,
    Kungs,
    NodeGroup,
    OnlineQGen,
    RfQGen,
)
from repro.obs import MetricsRegistry

ALGORITHMS = [EnumQGen, Kungs, CBM, RfQGen, BiQGen]


def _fingerprint(result):
    """Order-sensitive, exact archive fingerprint (floats compared by ==)."""
    return [
        (e.instance.instantiation.key, frozenset(e.matches), e.delta, e.coverage,
         e.feasible)
        for e in result.instances
    ]


@pytest.mark.parametrize("algo_cls", ALGORITHMS)
@pytest.mark.parametrize("engine", ["set", "bitset"])
def test_delta_scoring_is_bit_identical(algo_cls, engine, talent_config):
    baseline_config = replace(talent_config, matcher_engine=engine)
    delta_config = replace(
        talent_config, matcher_engine=engine, use_delta_scoring=True
    )
    baseline = algo_cls(baseline_config).run()
    delta = algo_cls(delta_config).run()
    assert _fingerprint(delta) == _fingerprint(baseline)
    assert delta.epsilon == baseline.epsilon


@pytest.mark.parametrize("algo_cls", ALGORITHMS)
def test_no_scoring_counters_when_off(algo_cls, talent_config):
    registry = MetricsRegistry()
    talent_config.metrics = registry
    try:
        algo_cls(talent_config).run()
    finally:
        talent_config.metrics = None
    scoring = [name for name in registry.counters() if name.startswith("scoring.")]
    assert scoring == []


@pytest.mark.parametrize("algo_cls", [RfQGen, BiQGen])
def test_delta_path_engages(algo_cls, talent_config):
    """The lattice generators thread parents, so deltas must actually fire."""
    registry = MetricsRegistry()
    config = replace(talent_config, use_delta_scoring=True, metrics=registry)
    result = algo_cls(config).run()
    assert registry.value("scoring.score_calls") > 0
    assert registry.value("scoring.delta_updates") > 0
    # The stats view surfaces the same counters.
    assert result.stats.delta_scored == registry.value("scoring.delta_updates")
    assert result.stats.score_cache_hits == registry.value("scoring.cache_hits")


def test_differential_on_larger_answers(small_lki_bundle):
    """Same contract on a non-toy graph whose answers exceed the
    decomposition threshold (exercising the maintained Gower stats)."""
    b = small_lki_bundle
    base = GenerationConfig(
        b.graph, b.template, b.groups, epsilon=0.1, max_domain_values=4
    )
    for engine in ("set", "bitset"):
        baseline = RfQGen(replace(base, matcher_engine=engine)).run()
        delta = RfQGen(
            replace(base, matcher_engine=engine, use_delta_scoring=True)
        ).run()
        assert _fingerprint(delta) == _fingerprint(baseline)


def test_online_stream_differential(talent_graph, talent_template, talent_groups):
    """OnlineQGen evaluates streamed instances with no parent threading;
    the fingerprint cache must absorb repeats without changing results."""
    from repro.workload import shuffled_space_stream

    def run(use_delta):
        config = GenerationConfig(
            talent_graph,
            talent_template,
            talent_groups,
            epsilon=0.3,
            max_domain_values=8,
            use_delta_scoring=use_delta,
        )
        online = OnlineQGen(config, k=4, window=8)
        stream = shuffled_space_stream(config.template, config.build_domains(), seed=3)
        return _fingerprint(online.run(stream))

    assert run(True) == run(False)


def test_small_delta_fraction_still_exact(talent_config):
    """A tiny delta budget forces constant rebuilds — values unchanged."""
    baseline = BiQGen(talent_config).run()
    strict = BiQGen(
        replace(
            talent_config,
            use_delta_scoring=True,
            scoring_delta_max_fraction=0.0,
            score_cache_max_entries=2,
        )
    ).run()
    assert _fingerprint(strict) == _fingerprint(baseline)
