"""Integration tests: the generation algorithms against brute-force truth.

For each configuration we enumerate and evaluate the full instance space
(the universe of feasible instances), then check every algorithm's output
against the paper's guarantees:

* Kungs returns exactly the Pareto front;
* EnumQGen / RfQGen / BiQGen return subsets of non-dominated points that
  ε'-dominate the whole universe for a small ε' (ε for the directly
  archived algorithms; (1+ε)²−1 covers BiQGen's sandwich slack);
* the archive size bound of Theorem 2 holds.
"""

import pytest

from repro.core import BiQGen, CBM, EnumQGen, Kungs, RfQGen
from repro.core.evaluator import InstanceEvaluator
from repro.core.kung import kung_front
from repro.core.lattice import InstanceLattice
from repro.core.pareto import dominates, epsilon_dominates


@pytest.fixture(scope="module")
def universes():
    """Evaluated instance universes keyed by config id (built once)."""
    return {}


def universe_for(config, cache):
    key = id(config.graph), config.template.name, config.epsilon
    if key not in cache:
        evaluator = InstanceEvaluator(config)
        lattice = InstanceLattice(config)
        evaluated = [evaluator.evaluate(i) for i in lattice.enumerate_instances()]
        cache[key] = [e for e in evaluated if e.feasible]
    return cache[key]


class TestKungsExact:
    def test_kungs_is_exact_front(self, talent_config, universes):
        feasible = universe_for(talent_config, universes)
        expected = {
            (p.delta, p.coverage) for p in kung_front(feasible)
        }
        result = Kungs(talent_config).run()
        got = {(p.delta, p.coverage) for p in result.instances}
        assert got == expected

    def test_kungs_members_not_dominated(self, talent_config, universes):
        feasible = universe_for(talent_config, universes)
        result = Kungs(talent_config).run()
        for kept in result.instances:
            assert not any(dominates(other, kept) for other in feasible)


def check_epsilon_pareto(result, feasible, epsilon, slack=1):
    """Assert the two ε-Pareto set conditions with multiplicative slack.

    ``slack=1`` checks plain ε-dominance; ``slack=2`` allows the
    (1+ε)²−1 tolerance of archive-mediated pruning.
    """
    effective = (1 + epsilon) ** slack - 1
    # (a) returned instances are non-dominated within the universe.
    for kept in result.instances:
        assert not any(
            dominates(other, kept) for other in feasible
        ), f"{result.algorithm} returned a dominated instance"
    # (b) every feasible instance is ε-dominated by some returned one.
    for point in feasible:
        assert any(
            epsilon_dominates(kept, point, effective) for kept in result.instances
        ), f"{result.algorithm} fails to ε-dominate {point}"


class TestApproximateAlgorithms:
    @pytest.mark.parametrize("algorithm_cls,slack", [
        (EnumQGen, 1),
        (RfQGen, 1),
        (BiQGen, 2),
    ])
    def test_epsilon_pareto_conditions_toy(
        self, talent_config, universes, algorithm_cls, slack
    ):
        feasible = universe_for(talent_config, universes)
        assert feasible, "fixture must admit feasible instances"
        result = algorithm_cls(talent_config).run()
        assert result.instances
        check_epsilon_pareto(result, feasible, talent_config.epsilon, slack)

    @pytest.mark.parametrize("algorithm_cls,slack", [
        (EnumQGen, 1),
        (RfQGen, 1),
        (BiQGen, 2),
    ])
    def test_epsilon_pareto_conditions_lki(
        self, small_lki_config, universes, algorithm_cls, slack
    ):
        feasible = universe_for(small_lki_config, universes)
        assert feasible
        result = algorithm_cls(small_lki_config).run()
        check_epsilon_pareto(result, feasible, small_lki_config.epsilon, slack)

    def test_size_bound(self, small_lki_config, universes):
        feasible = universe_for(small_lki_config, universes)
        delta_max = max(p.delta for p in feasible)
        coverage_max = max(p.coverage for p in feasible)
        for algorithm_cls in (EnumQGen, RfQGen, BiQGen):
            result = algorithm_cls(small_lki_config).run()
            from repro.core.update import EpsilonParetoArchive

            bound = EpsilonParetoArchive(small_lki_config.epsilon).size_bound(
                delta_max, coverage_max
            )
            assert len(result) <= bound


class TestPruningEffect:
    def test_rfqgen_verifies_no_more_than_enum(self, small_lki_config):
        enum_result = EnumQGen(small_lki_config).run()
        rf_result = RfQGen(small_lki_config).run()
        assert rf_result.stats.verified <= enum_result.stats.verified

    def test_rfqgen_prunes_infeasible_subtrees(self, small_lki_config):
        result = RfQGen(small_lki_config).run()
        # The small LKI config has an infeasible refined region.
        assert result.stats.pruned > 0

    def test_incremental_verification_used(self, small_lki_config):
        result = RfQGen(small_lki_config).run()
        assert result.stats.incremental > 0


class TestAlgorithmAgreement:
    def test_extremes_agree(self, small_lki_config, universes):
        """All algorithms find (near-)extreme diversity and coverage points."""
        feasible = universe_for(small_lki_config, universes)
        best_delta = max(p.delta for p in feasible)
        best_coverage = max(p.coverage for p in feasible)
        eps = small_lki_config.epsilon
        for algorithm_cls in (EnumQGen, RfQGen, BiQGen, Kungs):
            result = algorithm_cls(small_lki_config).run()
            got_delta = max(p.delta for p in result.instances)
            got_coverage = max(p.coverage for p in result.instances)
            assert got_delta * (1 + eps) ** 2 >= best_delta
            assert got_coverage * (1 + eps) ** 2 >= best_coverage

    def test_deterministic_results(self, small_lki_config):
        a = BiQGen(small_lki_config).run()
        b = BiQGen(small_lki_config).run()
        assert [p.objectives for p in a.instances] == [
            p.objectives for p in b.instances
        ]


class TestCBMBehaviour:
    def test_cbm_returns_non_dominated_subset(self, small_lki_config, universes):
        feasible = universe_for(small_lki_config, universes)
        result = CBM(small_lki_config, levels=6).run()
        assert result.instances
        for kept in result.instances:
            assert not any(dominates(other, kept) for other in feasible)

    def test_cbm_contains_anchors(self, small_lki_config, universes):
        feasible = universe_for(small_lki_config, universes)
        result = CBM(small_lki_config, levels=6).run()
        best_delta = max(p.delta for p in feasible)
        best_coverage = max(p.coverage for p in feasible)
        assert any(p.delta == best_delta for p in result.instances)
        assert any(p.coverage == best_coverage for p in result.instances)
