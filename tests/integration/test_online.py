"""Integration tests for OnlineQGen over instance streams."""

import pytest

from repro.core.online import OnlineQGen
from repro.core.pareto import epsilon_dominates
from repro.workload import random_instance_stream, shuffled_space_stream


@pytest.fixture()
def stream_setup(small_lki_config):
    config = small_lki_config
    online = OnlineQGen(config, k=4, window=12, snapshot_every=8)
    domains = config.build_domains()
    return config, online, domains


class TestOnlineBasics:
    def test_size_never_exceeds_k(self, stream_setup):
        config, online, domains = stream_setup
        stream = shuffled_space_stream(config.template, domains, seed=1)
        result = online.run(stream)
        assert len(result) <= online.k
        for _, archived in result.trace:
            assert len(archived) <= online.k

    def test_epsilon_only_grows(self, stream_setup):
        config, online, domains = stream_setup
        stream = shuffled_space_stream(config.template, domains, seed=1)
        result = online.run(stream)
        epsilons = [s.epsilon for s in online.snapshots]
        assert epsilons == sorted(epsilons)
        assert result.epsilon >= config.epsilon

    def test_final_set_epsilon_dominates_feasible_stream(self, stream_setup):
        config, online, domains = stream_setup
        instances = list(shuffled_space_stream(config.template, domains, seed=1))
        result = online.run(iter(instances))
        # Re-evaluate the whole stream; every feasible instance must be
        # ε'-dominated at the final (possibly enlarged) ε, with the
        # (1+ε)²−1 slack of archive-mediated replacement.
        evaluator = online.evaluator
        feasible = [
            e for e in (evaluator.evaluate(i) for i in instances) if e.feasible
        ]
        slack = (1 + result.epsilon) ** 2 - 1
        for point in feasible:
            assert any(
                epsilon_dominates(kept, point, slack) for kept in result.instances
            )

    def test_delays_recorded(self, stream_setup):
        config, online, domains = stream_setup
        result = online.run(
            random_instance_stream(config.template, domains, 30, seed=2)
        )
        assert len(result.stats.delays) == 30
        assert result.stats.mean_delay >= 0.0
        assert result.stats.max_delay >= result.stats.mean_delay

    def test_empty_stream(self, stream_setup):
        _, online, _ = stream_setup
        result = online.run(iter([]))
        assert len(result) == 0

    def test_duplicate_heavy_stream(self, stream_setup):
        config, online, domains = stream_setup
        # A short cycle repeated: memoization keeps verification cheap and
        # the archive stays stable.
        base = list(
            random_instance_stream(config.template, domains, 5, seed=3)
        )
        result = online.run(iter(base * 10))
        assert result.stats.generated == 50
        assert online.evaluator.verified_count <= 5


class TestOnlineParameters:
    def test_k_one(self, small_lki_config):
        online = OnlineQGen(small_lki_config, k=1, window=5)
        domains = small_lki_config.build_domains()
        result = online.run(
            shuffled_space_stream(small_lki_config.template, domains, seed=4)
        )
        assert len(result) <= 1

    def test_zero_window(self, small_lki_config):
        online = OnlineQGen(small_lki_config, k=3, window=0)
        domains = small_lki_config.build_domains()
        result = online.run(
            random_instance_stream(small_lki_config.template, domains, 40, seed=5)
        )
        assert len(result) <= 3

    def test_invalid_parameters(self, small_lki_config):
        with pytest.raises(ValueError):
            OnlineQGen(small_lki_config, k=0)
        with pytest.raises(ValueError):
            OnlineQGen(small_lki_config, k=3, window=-1)

    def test_larger_window_never_worse_epsilon(self, small_lki_config):
        """With more cache the maintained ε should not end up larger."""
        domains = small_lki_config.build_domains()
        instances = list(
            shuffled_space_stream(small_lki_config.template, domains, seed=6)
        )
        small_w = OnlineQGen(small_lki_config, k=3, window=2).run(iter(instances))
        large_w = OnlineQGen(small_lki_config, k=3, window=64).run(iter(instances))
        # Not a theorem, but holds on this deterministic stream and guards
        # the caching mechanism against regressions.
        assert large_w.epsilon <= small_w.epsilon + 1e-9
