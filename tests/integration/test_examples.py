"""Smoke tests: every bundled example runs to completion quickly."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *extra_args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *extra_args],
        capture_output=True,
        text=True,
        timeout=180,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "BiQGen returned" in result.stdout
        assert "instance of" in result.stdout

    def test_talent_search(self):
        result = run_example("talent_search.py", "--scale", "0.1", "--coverage", "6")
        assert result.returncode == 0, result.stderr
        assert "disparate-impact ratio" in result.stdout
        assert "RfQGen" in result.stdout and "BiQGen" in result.stdout

    def test_movie_recommendation(self):
        result = run_example(
            "movie_recommendation.py", "--scale", "0.1", "--per-genre", "4"
        )
        assert result.returncode == 0, result.stderr
        assert "best genre balance" in result.stdout

    def test_academic_search(self):
        result = run_example(
            "academic_search.py", "--scale", "0.1", "--coverage", "6", "--topics", "2"
        )
        assert result.returncode == 0, result.stderr
        assert "exact Pareto front" in result.stdout
        assert "I_ε" in result.stdout

    def test_online_workload(self):
        result = run_example(
            "online_workload.py", "--scale", "0.1", "--count", "60", "--coverage", "6"
        )
        assert result.returncode == 0, result.stderr
        assert "final workload" in result.stdout
        assert "evolution:" in result.stdout

    def test_rpq_exploration(self):
        result = run_example(
            "rpq_exploration.py", "--scale", "0.1", "--coverage", "6"
        )
        assert result.returncode == 0, result.stderr
        assert "RPQGen" in result.stdout
        assert "cites+" in result.stdout

    def test_benchmark_workloads(self, tmp_path):
        result = run_example(
            "benchmark_workloads.py",
            "--scale",
            "0.1",
            "--fraction",
            "0.1",
            "--out",
            str(tmp_path / "w.json"),
        )
        assert result.returncode == 0, result.stderr
        assert "goal satisfied" in result.stdout
        assert "round-trip OK: True" in result.stdout

    def test_graph_updates(self):
        result = run_example(
            "graph_updates.py", "--scale", "0.1", "--coverage", "6",
            "--updates", "4",
        )
        assert result.returncode == 0, result.stderr
        assert "maintained suggestion" in result.stdout
        assert "re-verified" in result.stdout

    def test_custom_dataset(self):
        result = run_example("custom_dataset.py")
        assert result.returncode == 0, result.stderr
        assert "schema conformance: 0 violations" in result.stdout
        assert "FairSQG report" in result.stdout
