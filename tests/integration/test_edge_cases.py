"""Edge-case behaviour of the generation algorithms.

Degenerate configurations must degrade gracefully: infeasible-everywhere
settings return empty sets (not errors), templates with no variables have
one-instance spaces, and wildcard-heavy partial instantiations verify.
"""

import pytest

from repro import (
    BiQGen,
    EnumQGen,
    GenerationConfig,
    GroupSet,
    Kungs,
    NodeGroup,
    OnlineQGen,
    RfQGen,
)
from repro.core.cbm import CBM
from repro.query import Instantiation, Literal, Op, QueryInstance, QueryTemplate


@pytest.fixture()
def impossible_config(talent_graph, talent_template, talent_ids):
    """Coverage constraints no instance can meet (c = 2 from a group of 2
    whose members are never both matched together with xe1 required paths)."""
    groups = GroupSet(
        [
            # d1 and d4 are only recommended by r1; requiring 2 of
            # {d1, d3} AND 2 of {d2, d4} forces the full answer — which
            # overshoots nothing, so instead pin an unmatchable node: the
            # recommender r1 never matches u0 (not a director).
            NodeGroup("ghost", frozenset({talent_ids["r1"]}), 1),
        ]
    )
    return GenerationConfig(
        talent_graph, talent_template, groups, epsilon=0.3, max_domain_values=8
    )


class TestNoFeasibleInstances:
    @pytest.mark.parametrize(
        "algorithm_cls", [EnumQGen, Kungs, CBM, RfQGen, BiQGen]
    )
    def test_empty_result(self, impossible_config, algorithm_cls):
        result = algorithm_cls(impossible_config).run()
        assert len(result) == 0
        assert result.stats.feasible == 0

    def test_online_empty(self, impossible_config):
        from repro.workload import shuffled_space_stream

        online = OnlineQGen(impossible_config, k=3, window=5)
        stream = shuffled_space_stream(
            impossible_config.template, online.lattice.domains, seed=0
        )
        result = online.run(stream)
        assert len(result) == 0


class TestVariableFreeTemplate:
    def test_single_instance_space(self, talent_graph, talent_groups):
        template = (
            QueryTemplate.builder("fixed-only")
            .node("u0", "person", Literal("title", Op.EQ, "director"))
            .node("u1", "person")
            .fixed_edge("u1", "u0", "recommend")
            .output("u0")
            .build()
        )
        config = GenerationConfig(
            talent_graph, template, talent_groups, epsilon=0.3
        )
        for algorithm_cls in (EnumQGen, RfQGen, BiQGen):
            result = algorithm_cls(config).run()
            assert result.stats.verified == 1
            assert len(result) == 1  # The lone instance is feasible here.


class TestPartialInstantiation:
    def test_wildcards_verify(self, talent_config, talent_template, talent_ids):
        from repro.core.evaluator import InstanceEvaluator

        evaluator = InstanceEvaluator(talent_config)
        # Only xe1 bound; both range variables wildcarded away.
        partial = QueryInstance(Instantiation(talent_template, {"xe1": 0}))
        evaluated = evaluator.evaluate(partial)
        assert evaluated.matches == {
            talent_ids[d] for d in ("d1", "d2", "d3", "d4")
        }


class TestSingleGroup:
    def test_one_group_generation(self, talent_graph, talent_template, talent_ids):
        groups = GroupSet(
            [NodeGroup("directors", frozenset(
                talent_ids[d] for d in ("d1", "d2", "d3", "d4")
            ), 2)]
        )
        config = GenerationConfig(
            talent_graph, talent_template, groups, epsilon=0.3
        )
        result = BiQGen(config).run()
        assert result.instances
        for point in result.instances:
            assert len(point.matches & groups["directors"].members) >= 2


class TestTightEpsilon:
    def test_tiny_epsilon_returns_full_front(self, small_lki_config):
        from repro.core.kung import kung_front
        from repro.core.evaluator import InstanceEvaluator
        from repro.core.lattice import InstanceLattice

        config = small_lki_config.with_epsilon(1e-6)
        evaluator = InstanceEvaluator(config)
        lattice = InstanceLattice(config)
        feasible = [
            e
            for e in (evaluator.evaluate(i) for i in lattice.enumerate_instances())
            if e.feasible
        ]
        front_coords = {(p.delta, p.coverage) for p in kung_front(feasible)}
        result = EnumQGen(config).run()
        got = {(p.delta, p.coverage) for p in result.instances}
        # At ε → 0 each front point sits in its own box: the archive holds
        # (a representative of) every distinct front coordinate.
        assert got == front_coords

    def test_huge_epsilon_returns_tiny_set(self, small_lki_config):
        result = EnumQGen(small_lki_config.with_epsilon(1000.0)).run()
        assert 1 <= len(result) <= 3
