"""Integration tests for the FairSQGSession facade."""

import pytest

from repro.core.rfqgen import RfQGen
from repro.session import FairSQGSession


@pytest.fixture()
def session(small_lki_bundle):
    b = small_lki_bundle
    return FairSQGSession(
        b.graph, b.template, b.groups, epsilon=0.1, max_domain_values=4
    )


class TestSession:
    def test_suggest_cached(self, session):
        first = session.suggest()
        second = session.suggest()
        assert first is second
        assert session.suggest(force=True) is not first

    def test_result_property_triggers_run(self, session):
        assert len(session.result) >= 1

    def test_top_spread(self, session):
        top = session.top(2)
        assert 1 <= len(top) <= 2
        assert top == sorted(top, key=lambda p: (-p.delta, -p.coverage))

    def test_pick_and_why(self, session):
        pick = session.pick(lambda_r=0.9)
        assert pick is not None
        narrative = session.why(pick)
        assert "answer size:" in narrative

    def test_audit(self, session):
        pick = session.pick(0.5)
        audit = session.audit(pick)
        assert audit.feasible
        assert {e.name for e in audit.entries} == {"M", "F"}

    def test_report(self, session):
        text = session.report(lambda_r=0.7, max_representatives=3)
        assert "FairSQG report" in text
        assert "λ_R = 0.7" in text

    def test_initial_is_most_relaxed(self, session):
        initial = session.initial
        for point in session.result.instances:
            assert point.matches <= initial.matches

    def test_algorithm_override(self, small_lki_bundle):
        b = small_lki_bundle
        session = FairSQGSession(
            b.graph, b.template, b.groups, epsilon=0.1,
            algorithm=RfQGen, max_domain_values=4,
        )
        assert session.result.algorithm == "RfQGen"

    def test_config_options_forwarded(self, small_lki_bundle):
        b = small_lki_bundle
        session = FairSQGSession(
            b.graph, b.template, b.groups, epsilon=0.1, lam=0.9,
            max_domain_values=4,
        )
        assert session.config.lam == 0.9
