"""Integration tests for the ``fairsqg`` CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.dataset == "lki"
        assert args.algorithm == "biqgen"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--algorithm", "magic"])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig9a"])
        assert args.name == "fig9a"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "DBP" in out and "LKI" in out and "Cite" in out

    def test_generate(self, capsys):
        code = main(
            [
                "generate",
                "--dataset",
                "lki",
                "--algorithm",
                "rfqgen",
                "--scale",
                "0.1",
                "--coverage",
                "6",
                "--epsilon",
                "0.2",
                "--domain-cap",
                "4",
                "--show-queries",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RfQGen" in out
        assert "run statistics" in out
        assert "instance of" in out  # --show-queries rendering.

    def test_generate_all_algorithms(self, capsys):
        for algorithm in ("enum", "kungs", "cbm", "biqgen"):
            code = main(
                [
                    "generate",
                    "--dataset",
                    "dbp",
                    "--algorithm",
                    algorithm,
                    "--scale",
                    "0.05",
                    "--coverage",
                    "4",
                    "--epsilon",
                    "0.3",
                    "--domain-cap",
                    "3",
                ]
            )
            assert code == 0
        assert capsys.readouterr().out

    def test_online(self, capsys):
        code = main(
            [
                "online",
                "--dataset",
                "lki",
                "--k",
                "3",
                "--count",
                "25",
                "--scale",
                "0.1",
                "--coverage",
                "6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "OnlineQGen" in out
        assert "processed 25 instances" in out

    def test_experiment_table2(self, capsys):
        code = main(["experiment", "table2", "--scale", "0.05"])
        assert code == 0
        assert "table2" in capsys.readouterr().out


class TestExtensionCommands:
    def test_rpq(self, capsys):
        code = main(["rpq", "--dataset", "cite", "--scale", "0.1",
                     "--coverage", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "RPQGen" in out and "cites+" in out

    def test_rpq_lattice_variant(self, capsys):
        code = main(["rpq", "--dataset", "cite", "--scale", "0.1",
                     "--coverage", "6", "--lattice"])
        assert code == 0
        assert "RPQRfGen" in capsys.readouterr().out

    def test_workload(self, capsys, tmp_path):
        out_path = tmp_path / "w.json"
        code = main(["workload", "--dataset", "lki", "--scale", "0.1",
                     "--coverage", "6", "--fraction", "0.1",
                     "--out", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "goal satisfied" in out
        assert out_path.exists()

    def test_audit(self, capsys):
        code = main(["audit", "--dataset", "lki", "--scale", "0.1",
                     "--coverage", "6", "--lambda-r", "0.8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fairness audit" in out
        assert "disparate impact" in out

    def test_profile(self, capsys):
        code = main(["profile", "--dataset", "lki", "--scale", "0.1",
                     "--coverage", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "candidate funnel" in out
        assert "tightest node" in out
