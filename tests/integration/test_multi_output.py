"""Integration tests for the multiple-output-node extension."""

import pytest

from repro.core.multi_output import MultiOutputEvaluator, MultiOutputQGen
from repro.core.pareto import dominates, epsilon_dominates
from repro.errors import ConfigurationError, MatchingError
from repro.matching.matcher import SubgraphMatcher
from repro.query import Instantiation, QueryInstance


class TestMatchOutputs:
    def test_agrees_with_single_output(self, talent_graph, talent_template):
        matcher = SubgraphMatcher(talent_graph)
        q = QueryInstance(
            Instantiation(talent_template, {"xl1": 5, "xl2": 100, "xe1": 0})
        )
        single = matcher.match(q).matches
        multi = matcher.match_outputs(q, [talent_template.output_node])
        assert multi[talent_template.output_node] == single

    def test_multiple_person_nodes(self, talent_graph, talent_template, talent_ids):
        matcher = SubgraphMatcher(talent_graph)
        q = QueryInstance(
            Instantiation(talent_template, {"xl1": 5, "xl2": 100, "xe1": 0})
        )
        result = matcher.match_outputs(q, ["u0", "u1"])
        # u1 matches are recommenders working somewhere: r1 and r2... plus
        # any person with an outgoing recommend+worksAt; here exactly r1, r2.
        assert result["u1"] == {talent_ids["r1"], talent_ids["r2"]}
        assert result["u0"] == {
            talent_ids[d] for d in ("d1", "d2", "d3", "d4")
        }

    def test_inactive_output_rejected(self, talent_graph, talent_template):
        matcher = SubgraphMatcher(talent_graph)
        # xe1=0 drops u3 from the instance.
        q = QueryInstance(
            Instantiation(talent_template, {"xl1": 5, "xl2": 100, "xe1": 0})
        )
        with pytest.raises(MatchingError):
            matcher.match_outputs(q, ["u3"])

    def test_cyclic_instance_per_output(self, triangle_graph):
        from repro.query import QueryTemplate

        template = (
            QueryTemplate.builder("tri")
            .node("u0", "a")
            .node("u1", "a")
            .node("u2", "a")
            .fixed_edge("u0", "u1", "e")
            .fixed_edge("u1", "u2", "e")
            .fixed_edge("u2", "u0", "e")
            .output("u0")
            .build()
        )
        matcher = SubgraphMatcher(triangle_graph)
        q = QueryInstance(Instantiation(template))
        result = matcher.match_outputs(q, ["u0", "u1", "u2"])
        for node in ("u0", "u1", "u2"):
            assert result[node] == {0, 1, 2}


class TestMultiOutputEvaluator:
    def test_union_semantics(self, talent_config, talent_template, talent_ids):
        evaluator = MultiOutputEvaluator(talent_config, ["u0", "u1"])
        q = QueryInstance(
            Instantiation(talent_template, {"xl1": 5, "xl2": 100, "xe1": 0})
        )
        evaluated = evaluator.evaluate(q)
        expected = {talent_ids[n] for n in ("d1", "d2", "d3", "d4", "r1", "r2")}
        assert evaluated.matches == expected

    def test_mixed_labels_rejected(self, talent_config):
        with pytest.raises(ConfigurationError):
            MultiOutputEvaluator(talent_config, ["u0", "u2"])  # person + org.

    def test_empty_outputs_rejected(self, talent_config):
        with pytest.raises(ConfigurationError):
            MultiOutputEvaluator(talent_config, [])

    def test_dropped_output_contributes_nothing(
        self, talent_config, talent_template, talent_ids
    ):
        evaluator = MultiOutputEvaluator(talent_config, ["u0", "u3"])
        # xe1=0 drops u3; only u0's matches remain.
        q = QueryInstance(
            Instantiation(talent_template, {"xl1": 5, "xl2": 100, "xe1": 0})
        )
        evaluated = evaluator.evaluate(q)
        assert evaluated.matches == {
            talent_ids[d] for d in ("d1", "d2", "d3", "d4")
        }


class TestMultiOutputQGen:
    def test_produces_valid_epsilon_pareto_set(self, talent_config):
        gen = MultiOutputQGen(talent_config, ["u0", "u1"])
        result = gen.run()
        assert result.instances
        # Rebuild the universe with the same evaluator and check conditions.
        universe = [
            gen.evaluator.evaluate(i)
            for i in gen.lattice.enumerate_instances()
        ]
        feasible = [e for e in universe if e.feasible]
        for point in feasible:
            assert any(
                epsilon_dominates(kept, point, talent_config.epsilon)
                for kept in result.instances
            )
        for kept in result.instances:
            assert not any(dominates(p, kept) for p in feasible)

    def test_union_monotone_under_refinement(self, talent_config, talent_template):
        """Lemma 2 extends: refinement shrinks the union answer."""
        evaluator = MultiOutputEvaluator(talent_config, ["u0", "u1"])
        relaxed = evaluator.evaluate(
            QueryInstance(
                Instantiation(talent_template, {"xl1": 5, "xl2": 100, "xe1": 0})
            )
        )
        refined = evaluator.evaluate(
            QueryInstance(
                Instantiation(talent_template, {"xl1": 12, "xl2": 1000, "xe1": 1})
            )
        )
        assert refined.matches <= relaxed.matches
