"""Regression: template refinement must not skip distinguishing bounds.

Found by the end-to-end hypothesis test: with a *quantized* domain, the
paper's "restrict x's values to those occurring in G_q^d" implemented as a
plain intersection can drop a quantized bound that still separates match
sets — here ``xl = 1`` (the only bound selecting recommender 6 alone) is
in the quantized domain ``[0, 1, 3, 4]`` but not among the in-ball scores
``{0, 2, 4}``, so RfQGen jumped from 0 straight to the infeasible 4 and
lost the high-coverage front instance (δ=1.05, f=2). The fix snaps each
in-ball value to its domain representative (0→0, 2→1, 4→4), keeping the
step while preserving the pruning of the hopeless bound 3.
"""

import pytest

from repro import (
    BiQGen,
    EnumQGen,
    GenerationConfig,
    GroupSet,
    Literal,
    NodeGroup,
    Op,
    QueryTemplate,
    RfQGen,
)
from repro.core.pareto import epsilon_dominates
from repro.graph.builder import GraphBuilder


@pytest.fixture(scope="module")
def config():
    b = GraphBuilder("regression")
    # Targets (answers) with scores and groups a/b.
    b.node("person", kind="target", score=4, group="a")  # 0
    b.node("person", kind="target", score=1, group="a")  # 1
    b.node("person", kind="target", score=0, group="a")  # 2
    b.node("person", kind="target", score=0, group="b")  # 3
    b.node("person", kind="target", score=0, group="a")  # 4
    b.node("person", kind="target", score=3, group="a")  # 5
    # Recommenders: 6 (score 2) covers both groups; 7 (score 0) covers one.
    b.node("person", kind="rec", score=2)  # 6
    b.node("person", kind="rec", score=0)  # 7
    b.edge(6, 2, "rec")
    b.edge(6, 3, "rec")
    b.edge(7, 0, "rec")
    graph = b.build()

    template = (
        QueryTemplate.builder("regression")
        .node("u0", "person", Literal("kind", Op.EQ, "target"))
        .node("u1", "person")
        .node("u1x", "person")
        .fixed_edge("u1", "u0", "rec")
        .edge_var("xe", "u1", "u1x", "rec")
        .range_var("xl", "u1", "score", Op.GE)
        .output("u0")
        .build()
    )
    groups = GroupSet(
        [
            NodeGroup("a", frozenset({0, 1, 2, 4, 5}), 1),
            NodeGroup("b", frozenset({3}), 1),
        ]
    )
    # max_domain_values=4 quantizes score's domain {0,1,2,3,4} to
    # [0, 1, 3, 4] — the quantization/ball interaction under test.
    return GenerationConfig(graph, template, groups, epsilon=0.05, max_domain_values=4)


class TestTemplateRefinementRegression:
    def test_quantized_domain_is_exactly_the_failing_shape(self, config):
        from repro.core.lattice import InstanceLattice

        lattice = InstanceLattice(config)
        assert lattice.domains.domain("xl") == (0, 1, 3, 4)

    @pytest.mark.parametrize("algorithm_cls", [RfQGen, BiQGen])
    def test_high_coverage_instance_not_lost(self, config, algorithm_cls):
        enum = EnumQGen(config).run()
        result = algorithm_cls(config).run()
        slack = (
            config.epsilon
            if algorithm_cls is RfQGen
            else (1 + config.epsilon) ** 2 - 1
        )
        for point in enum.instances:
            assert any(
                epsilon_dominates(kept, point, slack)
                for kept in result.instances
            ), f"{algorithm_cls.__name__} lost {point}"
        # Specifically: the f=2 (exact-coverage) instance must be covered.
        best_coverage = max(p.coverage for p in result.instances)
        assert best_coverage == 2.0

    def test_refinement_still_prunes_hopeless_bound(self, config):
        """The fix keeps pruning: bound 3 (no rec scores ≥ 3) is skipped."""
        result = RfQGen(config).run()
        visited_bounds = set()
        # Recover the bounds RfQGen actually verified from the evaluator cache.
        for key in result.instances:
            visited_bounds.add(dict(key.instance.instantiation)["xl"])
        # Verified-instance count stays below exhaustive (4 instances
        # spawn-pruned territory): 3 is never a useful next step because
        # no in-ball value maps to it.
        assert result.stats.verified <= EnumQGen(config).run().stats.verified
