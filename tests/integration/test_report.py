"""Integration tests for the run-report builder and its CLI flag."""

import pytest

from repro.cli import main
from repro.core import BiQGen
from repro.core.report import build_report


class TestBuildReport:
    def test_full_report_sections(self, small_lki_config):
        algo = BiQGen(small_lki_config)
        result = algo.run()
        text = build_report(small_lki_config, result, evaluator=algo.evaluator)
        assert "FairSQG report: BiQGen" in text
        assert "representative instances" in text
        assert "preferred instance" in text
        assert "fairness audit" in text
        assert "vs the most relaxed query" in text
        assert "suggested edits:" in text or "identical" in text

    def test_empty_result_report(self, talent_graph, talent_template, talent_ids):
        from repro import GenerationConfig, GroupSet, NodeGroup

        groups = GroupSet([NodeGroup("ghost", frozenset({talent_ids["r1"]}), 1)])
        config = GenerationConfig(
            talent_graph, talent_template, groups, epsilon=0.3
        )
        result = BiQGen(config).run()
        text = build_report(config, result)
        assert "no feasible instances" in text

    def test_representative_cap(self, small_lki_config):
        result = BiQGen(small_lki_config).run()
        text = build_report(small_lki_config, result, max_representatives=2)
        assert "2 representative instances" in text or "1 representative" in text

    def test_lambda_in_header(self, small_lki_config):
        result = BiQGen(small_lki_config).run()
        text = build_report(small_lki_config, result, lambda_r=0.9)
        assert "λ_R = 0.9" in text


class TestCliReportFlag:
    def test_generate_report(self, capsys):
        code = main(
            [
                "generate",
                "--dataset",
                "lki",
                "--scale",
                "0.1",
                "--coverage",
                "6",
                "--epsilon",
                "0.1",
                "--report",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FairSQG report" in out
        assert "fairness audit" in out
