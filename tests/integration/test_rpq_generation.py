"""Integration tests: FairSQG over RPQs (RPQGen end-to-end)."""

import pytest

from repro.core.pareto import dominates, epsilon_dominates
from repro.groups.groups import GroupSet, NodeGroup, groups_from_attribute
from repro.query.predicates import Op
from repro.query.variables import RangeVariable
from repro.rpq import RPQGen, RPQTemplate


@pytest.fixture(scope="module")
def setup(small_lki_bundle):
    graph = small_lki_bundle.graph
    template = RPQTemplate(
        "influence",
        source_label="person",
        path="recommend+",
        range_variables=[
            RangeVariable("min_src_exp", "source", "yearsOfExp", Op.GE),
            RangeVariable("min_dst_exp", "target", "yearsOfExp", Op.GE),
        ],
    )
    groups = groups_from_attribute(
        graph, "gender", {"M": 0, "F": 0}, label="person"
    ).with_constraints({"M": 3, "F": 3})
    return graph, template, groups


class TestRPQGen:
    def test_returns_feasible_epsilon_pareto_set(self, setup):
        graph, template, groups = setup
        result = RPQGen(graph, template, groups, epsilon=0.2, max_domain_values=4).run()
        assert result.instances, "the RPQ config must admit feasible instances"
        for point in result.instances:
            assert groups.is_feasible(point.matches)

    def test_epsilon_dominates_universe(self, setup):
        graph, template, groups = setup
        gen = RPQGen(graph, template, groups, epsilon=0.2, max_domain_values=4)
        result = gen.run()
        # Rebuild the feasible universe by hand and check both conditions.
        universe = []
        for instance in template.enumerate_instances(graph, 4):
            matches = instance.answer(graph)
            if groups.is_feasible(matches):
                universe.append(
                    type(result.instances[0])(
                        instance=instance,  # type: ignore[arg-type]
                        matches=matches,
                        delta=gen.diversity.of(matches),
                        coverage=gen.coverage.of(matches),
                        feasible=True,
                    )
                )
        assert universe
        for point in universe:
            assert any(
                epsilon_dominates(kept, point, 0.2) for kept in result.instances
            )
        for kept in result.instances:
            assert not any(dominates(other, kept) for other in universe)

    def test_stats(self, setup):
        graph, template, groups = setup
        result = RPQGen(graph, template, groups, epsilon=0.2, max_domain_values=4).run()
        assert result.stats.generated >= result.stats.verified
        assert result.stats.feasible <= result.stats.verified
        assert result.stats.elapsed_seconds > 0

    def test_invalid_epsilon(self, setup):
        graph, template, groups = setup
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            RPQGen(graph, template, groups, epsilon=0)

    def test_deterministic(self, setup):
        graph, template, groups = setup
        a = RPQGen(graph, template, groups, epsilon=0.2, max_domain_values=4).run()
        b = RPQGen(graph, template, groups, epsilon=0.2, max_domain_values=4).run()
        assert [p.objectives for p in a.instances] == [
            p.objectives for p in b.instances
        ]


class TestRPQRfGen:
    """The lattice-based RPQ generator vs the exhaustive one."""

    def test_same_epsilon_pareto_quality(self, setup):
        from repro.core.pareto import epsilon_dominates
        from repro.rpq import RPQRfGen

        graph, template, groups = setup
        exhaustive = RPQGen(graph, template, groups, epsilon=0.2, max_domain_values=4).run()
        lattice = RPQRfGen(graph, template, groups, epsilon=0.2, max_domain_values=4).run()
        # The lattice variant must ε-dominate everything the exhaustive
        # archive kept (both are ε-Pareto sets of the same universe).
        for point in exhaustive.instances:
            assert any(
                epsilon_dominates(kept, point, 0.2) for kept in lattice.instances
            )

    def test_prunes_infeasible_subtrees(self, setup):
        from repro.rpq import RPQRfGen

        graph, template, groups = setup
        exhaustive = RPQGen(graph, template, groups, epsilon=0.2, max_domain_values=4).run()
        lattice = RPQRfGen(graph, template, groups, epsilon=0.2, max_domain_values=4).run()
        assert lattice.stats.verified <= exhaustive.stats.verified

    def test_all_returned_feasible(self, setup):
        from repro.rpq import RPQRfGen

        graph, template, groups = setup
        result = RPQRfGen(graph, template, groups, epsilon=0.2, max_domain_values=4).run()
        for point in result.instances:
            assert groups.is_feasible(point.matches)


class TestRPQBiGen:
    """Bi-directional RPQ generation vs the exhaustive baseline."""

    def test_epsilon_pareto_quality(self, setup):
        from repro.core.pareto import epsilon_dominates
        from repro.rpq import RPQBiGen

        graph, template, groups = setup
        exhaustive = RPQGen(graph, template, groups, epsilon=0.2, max_domain_values=4).run()
        bidirectional = RPQBiGen(
            graph, template, groups, epsilon=0.2, max_domain_values=4
        ).run()
        for point in exhaustive.instances:
            assert any(
                epsilon_dominates(kept, point, 0.2)
                for kept in bidirectional.instances
            )

    def test_never_more_work_than_exhaustive(self, setup):
        from repro.rpq import RPQBiGen

        graph, template, groups = setup
        exhaustive = RPQGen(graph, template, groups, epsilon=0.2, max_domain_values=4).run()
        bidirectional = RPQBiGen(
            graph, template, groups, epsilon=0.2, max_domain_values=4
        ).run()
        assert bidirectional.stats.verified <= exhaustive.stats.verified

    def test_all_returned_feasible(self, setup):
        from repro.rpq import RPQBiGen

        graph, template, groups = setup
        result = RPQBiGen(graph, template, groups, epsilon=0.2, max_domain_values=4).run()
        for point in result.instances:
            assert groups.is_feasible(point.matches)

    def test_deterministic(self, setup):
        from repro.rpq import RPQBiGen

        graph, template, groups = setup
        a = RPQBiGen(graph, template, groups, epsilon=0.2, max_domain_values=4).run()
        b = RPQBiGen(graph, template, groups, epsilon=0.2, max_domain_values=4).run()
        assert [p.objectives for p in a.instances] == [
            p.objectives for p in b.instances
        ]
