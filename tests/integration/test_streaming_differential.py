"""Streaming differential suite: live archive ≡ cold rebuild, every step.

The streaming session's contract: after every applied delta, its graph,
ledger evaluations and ε-Pareto archive are *byte-identical* to what a
cold rebuild would produce — materialize ``G ⊕ Δ₁ ⊕ … ⊕ Δₜ`` from
scratch, build a fresh context/evaluator, evaluate the ledger instances
in order, offer the feasible ones. The suite pins that equality across
all three matcher engines × delta scoring on/off, for structural,
attribute and mixed deltas — the columnar engine's in-place CSR/column
repair included.
"""

import itertools

import pytest

from repro.core.evaluator import InstanceEvaluator
from repro.core.update import EpsilonParetoArchive
from repro.graph.builder import GraphBuilder
from repro.groups import GroupRule, GroupSet, NodeGroup, system_from_rules
from repro.matching.delta import GraphDelta, apply_delta
from repro.query import Literal, Op, QueryTemplate
from repro.service.context import GraphContext
from repro.streaming import StreamingSession, graph_signature
from repro.workload import random_delta_stream

CONFIG_GRID = list(
    itertools.product(("set", "bitset", "columnar"), (False, True))
)


def build_graph():
    """Fresh talent-toy graph per call (streaming mutates in place)."""
    b = GraphBuilder("talent-toy")
    o_small = b.node("org", name="smallco", employees=100)
    o_big = b.node("org", name="bigco", employees=1000)
    r1 = b.node("person", name="r1", title="analyst", yearsOfExp=5,
                gender="M", major="CS")
    r2 = b.node("person", name="r2", title="analyst", yearsOfExp=12,
                gender="F", major="Business")
    d1 = b.node("person", name="d1", title="director", yearsOfExp=15,
                gender="M", major="CS")
    d2 = b.node("person", name="d2", title="director", yearsOfExp=18,
                gender="F", major="Business")
    d3 = b.node("person", name="d3", title="director", yearsOfExp=20,
                gender="M", major="CS")
    d4 = b.node("person", name="d4", title="director", yearsOfExp=9,
                gender="F", major="Design")
    b.edge(r1, o_small, "worksAt")
    b.edge(r2, o_big, "worksAt")
    b.edge(r1, d1, "recommend")
    b.edge(r1, d2, "recommend")
    b.edge(r1, d4, "recommend")
    b.edge(r2, d2, "recommend")
    b.edge(r2, d3, "recommend")
    return b.build()


def build_template():
    return (
        QueryTemplate.builder("toy-talent")
        .node("u0", "person", Literal("title", Op.EQ, "director"))
        .node("u1", "person")
        .node("u2", "org")
        .fixed_edge("u1", "u0", "recommend")
        .fixed_edge("u1", "u2", "worksAt")
        .range_var("xl1", "u1", "yearsOfExp", Op.GE)
        .range_var("xl2", "u2", "employees", Op.GE)
        .output("u0")
        .build()
    )


def build_groups():
    return GroupSet(
        [
            NodeGroup("M", frozenset({4, 6}), 1),
            NodeGroup("F", frozenset({5, 7}), 1),
        ]
    )


# Overlapping rule-built system: "gender" / "major" churn moves directors
# between M/F and in/out of the umbrella "tech" group.
MEMBERSHIP_RULES = (
    GroupRule("M", {"gender": "M"}, 1, label="person"),
    GroupRule("F", {"gender": "F"}, 1, label="person"),
    GroupRule("tech", {"major": ("CS", "Design")}, 1, label="person"),
)


def archive_fingerprint(archive):
    """Byte-comparable archive content: box → (instance, matches, δ, f)."""
    return sorted(
        (
            box,
            ev.instance.instantiation.key,
            tuple(sorted(ev.matches)),
            ev.delta,
            ev.coverage,
            ev.feasible,
        )
        for box, ev in archive.boxes().items()
    )


def cold_rebuild(graph, template, groups, instances, **options):
    """The reference: a from-scratch build on the materialized graph."""
    context = GraphContext(graph)
    config = context.configure(template, groups, **options)
    evaluator = InstanceEvaluator(config)
    archive = EpsilonParetoArchive(config.epsilon)
    evaluations = []
    for instance in instances:
        evaluated = evaluator.evaluate(instance)
        evaluations.append(evaluated)
        if evaluated.feasible:
            archive.offer(evaluated)
    return archive, evaluations


@pytest.mark.parametrize("engine,scoring", CONFIG_GRID)
class TestStreamingDifferential:
    def _options(self, engine, scoring):
        return dict(
            epsilon=0.15,
            matcher_engine=engine,
            use_delta_scoring=scoring,
            max_domain_values=4,
        )

    def _run_stream(self, engine, scoring, seed, edge_ops=2, attr_ops=1, count=8):
        options = self._options(engine, scoring)
        graph = build_graph()
        template = build_template()
        groups = build_groups()
        session = StreamingSession(graph, template, groups, **options)
        session.generate(count=24, seed=3)
        reference = build_graph()
        deltas = list(
            random_delta_stream(
                graph, count=count, seed=seed, edge_ops=edge_ops, attr_ops=attr_ops
            )
        )
        for step, delta in enumerate(deltas):
            session.update(delta)
            reference = apply_delta(reference, delta)
            assert graph_signature(session.graph) == graph_signature(reference), (
                f"graph drifted from materialized reference at step {step}"
            )
            cold, evaluations = cold_rebuild(
                reference, template, groups, session.ledger_instances(), **options
            )
            assert archive_fingerprint(session.archive) == archive_fingerprint(
                cold
            ), f"archive drifted from cold rebuild at step {step}"
            maintained = [entry.evaluated for entry in session.ledger]
            for live, fresh in zip(maintained, evaluations):
                assert live.matches == fresh.matches
                assert live.delta == fresh.delta
                assert live.coverage == fresh.coverage
                assert live.feasible == fresh.feasible
        return session

    def test_structural_stream(self, engine, scoring):
        """Edge-only deltas: the cheap tier (scores survive verbatim)."""
        session = self._run_stream(engine, scoring, seed=5, attr_ops=0)
        counters = session.metrics.counters()
        assert counters["streaming.deltas_applied"] == 8
        assert counters["streaming.full_rescores"] == 0

    def test_attribute_stream(self, engine, scoring):
        """Attribute-only deltas: scoped and full score-repair tiers."""
        session = self._run_stream(
            engine, scoring, seed=13, edge_ops=0, attr_ops=2
        )
        assert session.metrics.counters()["streaming.deltas_applied"] == 8

    def test_mixed_stream_multiple_seeds(self, engine, scoring):
        """Mixed structural + attribute churn across independent seeds."""
        for seed in (11, 29, 47):
            self._run_stream(engine, scoring, seed=seed)

    def test_interleaved_generation(self, engine, scoring):
        """Generation requests interleave with updates; equality holds
        for instances adopted *after* earlier deltas too."""
        options = self._options(engine, scoring)
        graph = build_graph()
        template = build_template()
        groups = build_groups()
        session = StreamingSession(graph, template, groups, **options)
        session.generate(count=12, seed=3)
        reference = build_graph()
        deltas = list(
            random_delta_stream(graph, count=6, seed=17, edge_ops=2, attr_ops=1)
        )
        for step, delta in enumerate(deltas):
            session.update(delta)
            reference = apply_delta(reference, delta)
            session.generate(count=6, seed=100 + step)
            cold, _ = cold_rebuild(
                reference, template, groups, session.ledger_instances(), **options
            )
            assert archive_fingerprint(session.archive) == archive_fingerprint(cold)

    def test_membership_moving_stream(self, engine, scoring):
        """Rule-built overlapping system under attribute churn that moves
        group memberships: the live archive still equals a cold rebuild
        whose system is re-materialized from the rules on the reference
        graph, at every step."""
        options = self._options(engine, scoring)
        graph = build_graph()
        template = build_template()
        groups = system_from_rules(graph, MEMBERSHIP_RULES, clamp=True)
        session = StreamingSession(graph, template, groups, **options)
        session.generate(count=24, seed=3)
        reference = build_graph()
        deltas = list(
            random_delta_stream(
                graph, count=8, seed=7, edge_ops=1, attr_ops=2,
                attributes=["gender", "major"],
            )
        )
        moves = 0
        for step, delta in enumerate(deltas):
            report = session.update(delta)
            moves += report.membership_moves
            reference = apply_delta(reference, delta)
            assert graph_signature(session.graph) == graph_signature(reference)
            ref_groups = system_from_rules(reference, MEMBERSHIP_RULES, clamp=True)
            cold, evaluations = cold_rebuild(
                reference, template, ref_groups,
                session.ledger_instances(), **options
            )
            assert archive_fingerprint(session.archive) == archive_fingerprint(
                cold
            ), f"archive drifted from cold rebuild at step {step}"
            maintained = [entry.evaluated for entry in session.ledger]
            for live, fresh in zip(maintained, evaluations):
                assert live.matches == fresh.matches
                assert live.delta == fresh.delta
                assert live.coverage == fresh.coverage
                assert live.feasible == fresh.feasible
        counters = session.metrics.counters()
        assert counters["streaming.membership_moves"] == moves
        assert moves > 0, "stream never moved a membership — weak test"
        assert counters["groups.membership_repairs"] == 8

    def test_membership_patching_off_is_equivalent(self, engine, scoring):
        """The invalidation fallback arm (membership_patching=False)
        produces the same archives — only the repair mechanism differs."""
        options = self._options(engine, scoring)
        results = []
        for patching in (True, False):
            graph = build_graph()
            groups = system_from_rules(graph, MEMBERSHIP_RULES, clamp=True)
            session = StreamingSession(
                graph, build_template(), groups,
                membership_patching=patching, **options
            )
            session.generate(count=24, seed=3)
            fingerprints = []
            for delta in random_delta_stream(
                graph, count=8, seed=7, edge_ops=1, attr_ops=2,
                attributes=["gender", "major"],
            ):
                session.update(delta)
                fingerprints.append(archive_fingerprint(session.archive))
            results.append(fingerprints)
        assert results[0] == results[1]

    def test_graph_identity_preserved(self, engine, scoring):
        """In-place updates never replace the pinned graph object."""
        graph = build_graph()
        session = StreamingSession(
            graph, build_template(), build_groups(),
            **self._options(engine, scoring),
        )
        session.generate(count=8, seed=3)
        before = session.graph
        for delta in random_delta_stream(graph, count=4, seed=23):
            session.update(delta)
        assert session.graph is before
        assert session.context.revision == 4
        assert session.context.generation == 0
