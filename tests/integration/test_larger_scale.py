"""Moderate-scale smoke: generation stays correct and fast as graphs grow.

Not paper-scale (millions of nodes), but large enough that algorithmic
pathologies (quadratic candidate scans, archive churn) would show up as
timeouts. Budget: the whole module must run in well under a minute.
"""

import time

import pytest

from repro import BiQGen, GenerationConfig, RfQGen
from repro.datasets import lki_bundle


@pytest.fixture(scope="module")
def half_scale_config():
    bundle = lki_bundle(scale=0.5, coverage_total=24)
    return GenerationConfig(
        bundle.graph, bundle.template, bundle.groups,
        epsilon=0.05, max_domain_values=6,
    )


class TestLargerScale:
    def test_graph_size(self, half_scale_config):
        graph = half_scale_config.graph
        assert graph.num_nodes >= 900
        assert graph.num_edges >= 3000

    def test_biqgen_completes_quickly(self, half_scale_config):
        start = time.perf_counter()
        result = BiQGen(half_scale_config).run()
        elapsed = time.perf_counter() - start
        assert result.instances
        assert elapsed < 30, f"BiQGen took {elapsed:.1f}s at scale 0.5"

    def test_rfqgen_matches_biqgen_extremes(self, half_scale_config):
        rf = RfQGen(half_scale_config).run()
        bi = BiQGen(half_scale_config).run()
        eps = half_scale_config.epsilon
        assert max(p.delta for p in rf.instances) * (1 + eps) ** 2 >= max(
            p.delta for p in bi.instances
        )
        assert max(p.coverage for p in rf.instances) * (1 + eps) ** 2 >= max(
            p.coverage for p in bi.instances
        )

    def test_answers_are_substantial(self, half_scale_config):
        """At this scale answers hold hundreds of matches — exercising the
        decomposed diversity path (n > 64)."""
        result = BiQGen(half_scale_config).run()
        assert max(p.cardinality for p in result.instances) > 64
