"""Columnar differential suite: byte-identical archives, columnar on or off.

The columnar core replaces *representations* — CSR slices for adjacency
dicts, compiled column masks for attribute-table scans, interned codes
for raw values — never semantics. These tests run the full generators,
the delta-scoring engine and the serving context with the columnar
engine (and with a store enabled under the default engines) and compare
archives exactly: instantiation keys, match sets and the float δ/f
coordinates with ``==``.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import CBM, BiQGen, EnumQGen, GenerationConfig, Kungs, RfQGen
from repro.graph.indexes import GraphIndexes
from repro.matching.matcher import SubgraphMatcher
from repro.obs import MetricsRegistry
from repro.service.context import GraphContext

ALGORITHMS = [EnumQGen, Kungs, CBM, RfQGen, BiQGen]


def _fingerprint(result):
    """Order-sensitive, exact archive fingerprint (floats compared by ==)."""
    return [
        (e.instance.instantiation.key, frozenset(e.matches), e.delta, e.coverage,
         e.feasible)
        for e in result.instances
    ]


@pytest.mark.parametrize("algo_cls", ALGORITHMS)
def test_columnar_engine_is_bit_identical(algo_cls, talent_config):
    baseline = algo_cls(replace(talent_config, matcher_engine="set")).run()
    columnar = algo_cls(replace(talent_config, matcher_engine="columnar")).run()
    assert _fingerprint(columnar) == _fingerprint(baseline)
    assert columnar.epsilon == baseline.epsilon


@pytest.mark.parametrize("algo_cls", [RfQGen, BiQGen])
def test_columnar_with_delta_scoring(algo_cls, talent_config):
    baseline = algo_cls(replace(talent_config, matcher_engine="set")).run()
    fast = algo_cls(
        replace(
            talent_config, matcher_engine="columnar", use_delta_scoring=True
        )
    ).run()
    assert _fingerprint(fast) == _fingerprint(baseline)


def test_store_under_default_engine_is_inert(talent_config):
    """Enabling the store on shared indexes must not change set-engine
    results: the store only reroutes lookups, bit-for-bit."""
    baseline = RfQGen(talent_config).run()
    indexes = GraphIndexes(talent_config.graph)
    indexes.enable_columnar()
    shared = replace(talent_config, shared_indexes=indexes)
    with_store = RfQGen(shared).run()
    assert _fingerprint(with_store) == _fingerprint(baseline)


def test_columnar_context_serves_identical_results(
    talent_graph, talent_template, talent_groups
):
    plain = GraphContext(talent_graph)
    columnar = GraphContext(talent_graph, columnar=True, warm=True)
    assert columnar.indexes.columnar is not None
    # Warming pre-built every (edge label, direction) CSR plus undirected.
    expected = 2 * len(talent_graph.edge_labels())
    assert columnar.indexes.columnar.num_csrs == expected
    for context in (plain, columnar):
        config = context.configure(
            talent_template, talent_groups, epsilon=0.25, max_domain_values=6
        )
        result = RfQGen(config).run()
        context.result = _fingerprint(result)
    assert columnar.result == plain.result


def test_columnar_engine_counters(talent_config):
    """The engine surfaces its own matcher counters plus the store's
    build/patch counters on the run registry."""
    registry = MetricsRegistry()
    config = replace(talent_config, matcher_engine="columnar", metrics=registry)
    RfQGen(config).run()
    counters = registry.counters()
    assert counters["graph.columnar.builds"] == 1
    assert counters["graph.columnar.csr_builds"] >= 0
    assert "matcher.columnar.support_sweeps" in counters
    assert "matcher.columnar.fallback_propagations" in counters


def test_default_runs_see_no_columnar_counters(talent_config):
    """Baseline safety: without opting in, no ``graph.columnar.*`` or
    ``matcher.columnar.*`` counter may appear in a run snapshot."""
    registry = MetricsRegistry()
    config = replace(talent_config, matcher_engine="bitset", metrics=registry)
    RfQGen(config).run()
    leaked = [
        name for name in registry.counters() if "columnar" in name
    ]
    assert leaked == []


def test_matcher_rejects_unknown_engine(talent_graph):
    with pytest.raises(Exception):
        SubgraphMatcher(talent_graph, engine="rowwise")
