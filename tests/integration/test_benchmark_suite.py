"""Integration tests for the union-coverage workload generator."""

import pytest

from repro.errors import ConfigurationError
from repro.workload.benchmark_suite import CoverageWorkloadGenerator


class TestCoverageWorkload:
    def test_meets_feasible_goal(self, small_lki_config):
        # The template only matches directors, i.e. ≈20-25% of each gender
        # group — a 0.15 union-coverage goal is achievable.
        generator = CoverageWorkloadGenerator(small_lki_config)
        workload = generator.generate({"M": 0.15, "F": 0.15}, max_queries=6)
        assert workload.satisfied, workload.achieved
        assert 1 <= len(workload.queries) <= 6

    def test_achieved_matches_union(self, small_lki_config):
        generator = CoverageWorkloadGenerator(small_lki_config)
        workload = generator.generate({"M": 0.3, "F": 0.3}, max_queries=5)
        groups = small_lki_config.groups
        for name in ("M", "F"):
            union = set()
            for query in workload.queries:
                union |= {v for v in query.matches if v in groups[name].members}
            assert union == workload.covered[name]
            assert workload.achieved[name] == pytest.approx(
                len(union) / len(groups[name])
            )

    def test_zero_goal_selects_nothing(self, small_lki_config):
        generator = CoverageWorkloadGenerator(small_lki_config)
        workload = generator.generate({}, max_queries=5)
        assert workload.queries == []
        assert workload.satisfied

    def test_impossible_goal_reports_unsatisfied(self, small_lki_config):
        generator = CoverageWorkloadGenerator(small_lki_config)
        # The template only matches directors, so covering 100% of all
        # persons in each gender group is impossible.
        workload = generator.generate({"M": 1.0, "F": 1.0}, max_queries=3)
        assert not workload.satisfied
        assert len(workload.queries) <= 3

    def test_greedy_prefers_fewer_queries(self, small_lki_config):
        generator = CoverageWorkloadGenerator(small_lki_config)
        pool = generator.candidate_pool()
        small_goal = generator.generate({"M": 0.1, "F": 0.1}, max_queries=6, pool=pool)
        big_goal = generator.generate({"M": 0.4, "F": 0.4}, max_queries=6, pool=pool)
        assert len(small_goal.queries) <= len(big_goal.queries)

    def test_invalid_fraction(self, small_lki_config):
        generator = CoverageWorkloadGenerator(small_lki_config)
        with pytest.raises(ConfigurationError):
            generator.generate({"M": 1.5})

    def test_unknown_group(self, small_lki_config):
        generator = CoverageWorkloadGenerator(small_lki_config)
        with pytest.raises(ConfigurationError):
            generator.generate({"X": 0.5})

    def test_summary_rows(self, small_lki_config):
        generator = CoverageWorkloadGenerator(small_lki_config)
        workload = generator.generate({"M": 0.2, "F": 0.2}, max_queries=4)
        rows = workload.summary_rows()
        assert {row["group"] for row in rows} == {"M", "F"}
        for row in rows:
            assert 0 <= row["achieved"] <= 1

    def test_feasible_only_pool_smaller(self, small_lki_config):
        all_pool = CoverageWorkloadGenerator(
            small_lki_config, feasible_only=False
        ).candidate_pool()
        feasible_pool = CoverageWorkloadGenerator(
            small_lki_config, feasible_only=True
        ).candidate_pool()
        assert len(feasible_pool) <= len(all_pool)
        assert all(p.feasible for p in feasible_pool)
