"""Integration tests for the campaign runner."""

import pytest

from repro.bench.runner import experiment_registry, run_all
from repro.bench.settings import BenchSettings


TINY = BenchSettings(scale=0.06, coverage_total=4, max_domain_values=3, epsilon=0.05)


class TestRegistry:
    def test_all_paper_figures_registered(self):
        registry = experiment_registry()
        for exp_id in (
            "table2", "fig9a", "fig9b", "fig9c", "fig9d", "fig9e", "fig9f",
            "fig9gh", "cbm", "fig10a", "fig10b", "fig10c", "fig10d",
            "fig11a", "fig11b", "fig12",
        ):
            assert exp_id in registry, exp_id


class TestRunAll:
    def test_subset_run_writes_markdown(self, tmp_path):
        out = tmp_path / "RESULTS.md"
        text = run_all(TINY, output_path=out, only=["table2", "fig9a"])
        assert out.exists()
        assert "Table II" in text
        assert "Fig 9(a)" in text
        assert "```" in text

    def test_unknown_only_runs_nothing(self):
        text = run_all(TINY, only=["nope"])
        assert "##" not in text
