"""Integration tests for ParallelQGen (the paper's future-work topic)."""

import pytest

from repro.core import EnumQGen
from repro.core.parallel import ParallelQGen, _fork_available


def objective_set(result):
    return sorted((round(p.delta, 9), round(p.coverage, 9)) for p in result.instances)


class TestParallelQGen:
    def test_serial_fallback_matches_enum(self, talent_config):
        enum = EnumQGen(talent_config).run()
        parallel = ParallelQGen(talent_config, workers=1).run()
        assert objective_set(parallel) == objective_set(enum)

    @pytest.mark.skipif(not _fork_available(), reason="requires fork start method")
    def test_parallel_matches_enum_toy(self, talent_config):
        enum = EnumQGen(talent_config).run()
        parallel = ParallelQGen(talent_config, workers=2, batch_size=4).run()
        assert objective_set(parallel) == objective_set(enum)

    @pytest.mark.skipif(not _fork_available(), reason="requires fork start method")
    def test_parallel_matches_enum_lki(self, small_lki_config):
        enum = EnumQGen(small_lki_config).run()
        parallel = ParallelQGen(small_lki_config, workers=3, batch_size=8).run()
        assert objective_set(parallel) == objective_set(enum)

    @pytest.mark.skipif(not _fork_available(), reason="requires fork start method")
    def test_batch_size_irrelevant_to_result(self, talent_config):
        small = ParallelQGen(talent_config, workers=2, batch_size=1).run()
        large = ParallelQGen(talent_config, workers=2, batch_size=1000).run()
        assert objective_set(small) == objective_set(large)

    def test_stats_populated(self, talent_config):
        result = ParallelQGen(talent_config, workers=1).run()
        assert result.stats.generated > 0
        assert result.stats.verified == result.stats.generated
        assert result.stats.feasible > 0

    def test_serial_run_publishes_counters(self, talent_config):
        algo = ParallelQGen(talent_config, workers=1)
        algo.run()
        counters = algo.metrics.counters()
        assert counters.get("gen.parallelqgen.generated", 0) > 0
        assert counters.get("gen.parallelqgen.feasible", 0) > 0
        assert counters.get("matcher.match_calls", 0) > 0
        assert algo.metrics.spans, "parallel.run trace span missing"

    @pytest.mark.skipif(not _fork_available(), reason="requires fork start method")
    def test_parallel_run_aggregates_worker_counters(self, talent_config):
        """Worker-side matcher/evaluator work must land in the parent
        registry, matching the serial fallback's counter values."""
        serial = ParallelQGen(talent_config, workers=1)
        serial.run()
        forked = ParallelQGen(talent_config, workers=2, batch_size=4)
        forked.run()
        serial_counters = serial.metrics.counters()
        forked_counters = forked.metrics.counters()
        for name in (
            "matcher.match_calls",
            "matcher.backtrack_calls",
            "matcher.ac_removed",
            "evaluator.cache_misses",
        ):
            assert forked_counters.get(name) == serial_counters.get(name), name
        assert forked_counters.get("gen.parallelqgen.verified") == serial_counters.get(
            "gen.parallelqgen.verified"
        )

    @pytest.mark.skipif(not _fork_available(), reason="requires fork start method")
    def test_parallel_bitset_engine_matches_enum(self, talent_config):
        from dataclasses import replace

        config = replace(talent_config, matcher_engine="bitset")
        enum = EnumQGen(talent_config).run()
        parallel = ParallelQGen(config, workers=2, batch_size=4).run()
        assert objective_set(parallel) == objective_set(enum)
