"""Differential tests for the batch serving layer.

The serving contract: shared cache tiers (indexes + workload literal
pools) change *cost only*, never results. Each test runs a workload
through :class:`repro.session.BatchSession` and compares every outcome
element-wise against an independent standalone run of the same
configuration — for both matching engines — plus invalidation behaviour
after graph mutations and a CLI smoke.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import GenerationConfig
from repro.datasets.lki import LKI_SCHEMA
from repro.matching.delta import GraphDelta
from repro.query.serialization import template_to_dict
from repro.service.scheduler import ALGORITHMS
from repro.session import BatchSession
from repro.workload import TemplateGenerator, TemplateSpec, requests_from_templates


def _front(result):
    """Comparable rendering of a result's ε-Pareto set, element-wise."""
    return [
        (
            dict(point.instance.instantiation),
            point.delta,
            point.coverage,
            point.cardinality,
            sorted(point.matches),
        )
        for point in result.instances
    ]


def _standalone(bundle, request, engine):
    """Run one request exactly as a fresh, shares-nothing session would."""
    config = GenerationConfig(
        bundle.graph,
        request.template,
        bundle.groups,
        epsilon=request.epsilon,
        budget=request.budget(),
        matcher_engine=engine,
        max_domain_values=4,
    )
    return ALGORITHMS[request.algorithm](config).run()


def _workload(bundle, k=4):
    """k generated templates + the bundle's canonical one, as requests."""
    generator = TemplateGenerator(LKI_SCHEMA, seed=9)
    templates = generator.generate_many(
        TemplateSpec("person", size=3, num_range_vars=2, num_edge_vars=1), k
    )
    requests = requests_from_templates(
        templates, epsilon=0.15, clients=["alice", "bob"]
    )
    requests.append(
        requests_from_templates([bundle.template], epsilon=0.1)[0]
    )
    return requests


class TestBatchMatchesStandalone:
    @pytest.mark.parametrize("engine", ["set", "bitset"])
    def test_batch_identical_to_sequential_runs(self, small_lki_bundle, engine):
        bundle = small_lki_bundle
        requests = _workload(bundle)
        batch = BatchSession(
            bundle.graph, bundle.groups, engine=engine, max_domain_values=4
        )
        outcomes = batch.run(requests)
        assert len(outcomes) == len(requests)
        for outcome in outcomes:
            assert outcome.ok, outcome.error
            expected = _standalone(bundle, outcome.request, engine)
            assert _front(outcome.result) == _front(expected)
            assert outcome.result.epsilon == expected.epsilon

    def test_engines_agree_through_the_service(self, small_lki_bundle):
        bundle = small_lki_bundle
        requests = _workload(bundle)
        fronts = {}
        for engine in ("set", "bitset"):
            batch = BatchSession(
                bundle.graph, bundle.groups, engine=engine, max_domain_values=4
            )
            fronts[engine] = [
                _front(o.result) for o in batch.run(requests)
            ]
        assert fronts["set"] == fronts["bitset"]

    def test_warm_reuse_hits_workload_pools(self, small_lki_bundle):
        bundle = small_lki_bundle
        requests = _workload(bundle)
        batch = BatchSession(
            bundle.graph, bundle.groups, engine="bitset", max_domain_values=4
        )
        batch.run(requests)
        first_rate = batch.literal_pool_hit_rate
        batch.run(requests)  # second pass over the same workload
        assert batch.literal_pool_hit_rate > first_rate
        assert batch.metrics.value("service.workload_pool.hits") > 0


class TestDeduplication:
    def test_identical_requests_replay_shared_result(self, small_lki_bundle):
        bundle = small_lki_bundle
        batch = BatchSession(
            bundle.graph, bundle.groups, engine="bitset", max_domain_values=4
        )
        twins = [
            batch.request(bundle.template, epsilon=0.1, client="a"),
            batch.request(bundle.template, epsilon=0.1, client="b"),
            batch.request(bundle.template, epsilon=0.3, client="a"),
        ]
        outcomes = batch.run(twins)
        executed = [o for o in outcomes if not o.deduplicated]
        replayed = [o for o in outcomes if o.deduplicated]
        assert len(replayed) == 1
        assert replayed[0].result is executed[0].result  # same archive object
        assert batch.metrics.value("service.deduplicated") == 1


class TestInvalidation:
    def test_results_track_graph_mutations(self, small_lki_bundle):
        bundle = small_lki_bundle
        batch = BatchSession(
            bundle.graph, bundle.groups, engine="bitset", max_domain_values=4
        )
        request = batch.request(bundle.template, epsilon=0.1)
        before = batch.run([request])[0]
        assert before.ok

        # Mutate the served graph: drop one existing edge.
        edge = next(iter(bundle.graph.edges()))
        batch.apply_delta(GraphDelta(delete_edges=(edge.key,)))
        assert batch.context.generation == 1
        assert len(batch.context.literal_pools) == 0

        # Served results now describe the mutated graph, matching a
        # standalone run against that graph exactly.
        after = batch.run([batch.request(bundle.template, epsilon=0.1)])[0]
        assert after.ok
        standalone = ALGORITHMS["biqgen"](
            GenerationConfig(
                batch.context.graph,
                bundle.template,
                bundle.groups,
                epsilon=0.1,
                matcher_engine="bitset",
                max_domain_values=4,
            )
        ).run()
        assert _front(after.result) == _front(standalone)

    def test_stale_dedup_cannot_cross_invalidation(self, small_lki_bundle):
        bundle = small_lki_bundle
        batch = BatchSession(
            bundle.graph, bundle.groups, engine="bitset", max_domain_values=4
        )
        batch.run([batch.request(bundle.template, epsilon=0.1)])
        edge = next(iter(bundle.graph.edges()))
        batch.apply_delta(GraphDelta(delete_edges=(edge.key,)))
        outcome = batch.run([batch.request(bundle.template, epsilon=0.1)])[0]
        # Same signature as the pre-mutation batch, but dedup is per
        # batch, so this re-executed against the new graph.
        assert not outcome.deduplicated


class TestSessionSharing:
    def test_single_sessions_share_context(self, small_lki_bundle):
        bundle = small_lki_bundle
        batch = BatchSession(
            bundle.graph, bundle.groups, engine="bitset", max_domain_values=4
        )
        session = batch.session(bundle.template, epsilon=0.1)
        assert session.config.shared_indexes is batch.context.indexes
        result = session.suggest()
        standalone = ALGORITHMS["biqgen"](
            GenerationConfig(
                bundle.graph,
                bundle.template,
                bundle.groups,
                epsilon=0.1,
                matcher_engine="bitset",
                max_domain_values=4,
            )
        ).run()
        assert _front(result) == _front(standalone)


class TestCliBatch:
    def test_batch_smoke(self, tmp_path, capsys):
        from repro.cli import main

        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            "# default-template request plus one explicit duplicate\n"
            + json.dumps({"id": "r1", "epsilon": 0.2, "client": "alice"})
            + "\n"
            + json.dumps({"id": "r2", "epsilon": 0.2, "client": "bob"})
            + "\n"
        )
        out = tmp_path / "outcomes.jsonl"
        code = main(
            [
                "batch",
                str(requests),
                "--dataset",
                "lki",
                "--scale",
                "0.1",
                "--coverage",
                "6",
                "--domain-cap",
                "4",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "r1" in printed and "r2" in printed
        lines = [json.loads(l) for l in out.read_text().splitlines()]
        assert [l["id"] for l in lines] == ["r1", "r2"]
        assert all(l["ok"] for l in lines)
        assert sum(l["deduplicated"] for l in lines) == 1

    def test_batch_with_explicit_template(self, tmp_path, small_lki_bundle):
        from repro.cli import main

        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            json.dumps(
                {
                    "id": "explicit",
                    "template": template_to_dict(small_lki_bundle.template),
                    "epsilon": 0.2,
                    "max_instances": 8,
                }
            )
            + "\n"
        )
        assert main(
            [
                "batch",
                str(requests),
                "--scale",
                "0.1",
                "--coverage",
                "6",
                "--domain-cap",
                "4",
            ]
        ) == 0
