"""Chaos and differential harness for the serving daemon.

The daemon's correctness contract, pinned end-to-end:

* **Differential** — for any fault-free workload, outcomes are
  byte-identical (modulo wall-clock fields) to the synchronous
  :class:`~repro.session.BatchSession` path, for both matching engines.
* **Exactly-once under chaos** — with seeded CRASH/SLOW/ERROR faults
  injected mid-request, every submission still gets exactly one outcome,
  no queue entry is orphaned, and the returned ε-Pareto archives are
  identical to the fault-free run's.
* **Degradation** — overload sheds requests as empty truncated partials
  (never errors), and retry exhaustion fails only the poisoned request.

Faults are keyed by submission index via the same
:class:`~repro.runtime.faults.FaultInjector` schedule the parallel pool
uses, so a failing seed reproduces exactly.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.cli import main
from repro.datasets.lki import LKI_SCHEMA
from repro.runtime.faults import FaultInjector, FaultKind, FaultSpec
from repro.service.daemon import ServingDaemon, replay_unix
from repro.service.requests import outcome_to_dict
from repro.session import BatchSession, DaemonSession
from repro.workload import TemplateGenerator, TemplateSpec, requests_from_templates

OPTIONS = {"max_domain_values": 4}


def workload(bundle, k=4, clients=("alice", "bob")):
    """k generated templates + the bundle's canonical one, as requests."""
    generator = TemplateGenerator(LKI_SCHEMA, seed=9)
    templates = generator.generate_many(
        TemplateSpec("person", size=3, num_range_vars=2, num_edge_vars=1), k
    )
    requests = requests_from_templates(
        templates, epsilon=0.15, clients=list(clients)
    )
    requests.append(requests_from_templates([bundle.template], epsilon=0.1)[0])
    return requests


def fingerprint(outcome):
    """Wire rendering minus wall-clock noise."""
    payload = outcome_to_dict(outcome)
    payload.pop("elapsed_seconds", None)
    return payload


def by_id(outcomes):
    table = {}
    for outcome in outcomes:
        payload = fingerprint(outcome)
        assert payload["id"] not in table, "duplicate outcome id"
        table[payload["id"]] = payload
    return table


def make_daemon(bundle, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("engine", "set")
    kwargs.setdefault("defaults", dict(OPTIONS))
    return ServingDaemon(bundle.graph, bundle.groups, **kwargs)


def serve(bundle, requests, **kwargs):
    daemon = make_daemon(bundle, **kwargs)
    try:
        outcomes = daemon.serve(requests)
    finally:
        daemon.shutdown()
    return daemon, outcomes


class TestDifferential:
    @pytest.mark.parametrize("engine", ["set", "bitset"])
    def test_daemon_identical_to_batch_session(self, small_lki_bundle, engine):
        bundle = small_lki_bundle
        requests = workload(bundle)
        batch = BatchSession(
            bundle.graph, bundle.groups, engine=engine, **OPTIONS
        )
        sync_outcomes = batch.run(requests)
        _, daemon_outcomes = serve(
            bundle, requests, engine=engine, workers=3
        )
        assert len(daemon_outcomes) == len(requests)
        # Daemon outcomes come back in submission order.
        assert [o.request.request_id for o in daemon_outcomes] == [
            r.request_id for r in requests
        ]
        assert by_id(daemon_outcomes) == by_id(sync_outcomes)

    def test_dedup_matches_sync_semantics(self, small_lki_bundle):
        bundle = small_lki_bundle
        base = workload(bundle, k=2)
        # Identical work resubmitted under fresh ids, same tenant.
        dupes = [
            r.__class__(
                f"{r.request_id}-dup", r.template, r.algorithm, r.epsilon,
                r.client, r.deadline_seconds, r.max_instances,
                r.max_backtracks, r.slo, r.options,
            )
            for r in base
        ]
        requests = base + dupes
        daemon, outcomes = serve(bundle, requests, workers=2)
        table = by_id(outcomes)
        for r in base:
            original = dict(table[r.request_id])
            duplicate = dict(table[f"{r.request_id}-dup"])
            assert duplicate.pop("deduplicated") or True  # may be parked or replayed
            original.pop("deduplicated")
            original["id"] = duplicate["id"]
            assert original == duplicate
        assert daemon.metrics.value("service.daemon.deduplicated") >= 1

    def test_mixed_wire_submissions_keep_order(self, small_lki_bundle):
        bundle = small_lki_bundle
        requests = workload(bundle, k=2)
        submissions = [
            requests[0],
            "not json",
            requests[1],
            "",            # skipped entirely
            "# comment",   # skipped entirely
            requests[2],
        ]
        daemon, outcomes = serve(bundle, submissions)
        assert len(outcomes) == 4
        assert [outcome_to_dict(o)["id"] for o in outcomes] == [
            requests[0].request_id,
            "line-2",
            requests[1].request_id,
            requests[2].request_id,
        ]
        assert outcome_to_dict(outcomes[1])["rejected"] is True
        assert daemon.metrics.value("service.requests.rejected") == 1


class TestChaos:
    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_chaos_outcomes_identical_to_fault_free(self, small_lki_bundle, seed):
        bundle = small_lki_bundle
        requests = workload(bundle)
        _, clean = serve(bundle, requests)
        faults = FaultInjector.random(
            num_batches=len(requests), rate=0.5, seed=seed,
            kinds=(FaultKind.CRASH, FaultKind.ERROR),
        )
        daemon, chaotic = serve(
            bundle, requests, faults=faults, max_retries=2, workers=3
        )
        assert by_id(chaotic) == by_id(clean)
        assert all(o.ok for o in chaotic)
        if len(faults):
            assert daemon.metrics.value("service.daemon.retries") >= len(faults)
        assert len(daemon.admission) == 0

    def test_crash_after_work_is_still_exactly_once(self, small_lki_bundle):
        """A worker that dies *after* computing its result must not
        publish twice when the retry also completes."""
        bundle = small_lki_bundle
        requests = workload(bundle, k=2)
        faults = FaultInjector(
            [FaultSpec(kind=FaultKind.CRASH, batch_index=1, call_index=1)]
        )
        _, clean = serve(bundle, requests)
        daemon, chaotic = serve(bundle, requests, faults=faults)
        assert by_id(chaotic) == by_id(clean)
        assert daemon.metrics.value("service.daemon.worker_crashes") == 1
        assert daemon.metrics.value("service.daemon.worker_restarts") == 1

    def test_retry_exhaustion_fails_only_the_poisoned_request(
        self, small_lki_bundle
    ):
        bundle = small_lki_bundle
        requests = workload(bundle)
        poisoned = 2
        faults = FaultInjector(
            [FaultSpec(kind=FaultKind.ERROR, batch_index=poisoned, times=99)]
        )
        daemon, outcomes = serve(
            bundle, requests, faults=faults, max_retries=1
        )
        assert len(outcomes) == len(requests)
        for index, outcome in enumerate(outcomes):
            if index == poisoned:
                assert not outcome.ok
                assert "injected" in outcome.error
            else:
                assert outcome.ok, outcome.error
        assert daemon.metrics.value("service.daemon.failed") == 1
        assert daemon.metrics.value("service.daemon.completed") == len(requests) - 1

    def test_straggler_is_abandoned_and_retried(self, small_lki_bundle):
        bundle = small_lki_bundle
        requests = workload(bundle, k=2)
        faults = FaultInjector(
            [
                FaultSpec(
                    kind=FaultKind.SLOW, batch_index=0, delay_seconds=1.5
                )
            ]
        )
        _, clean = serve(bundle, requests)
        daemon, outcomes = serve(
            bundle, requests, faults=faults, attempt_timeout=0.25,
            max_retries=2, workers=3,
        )
        assert by_id(outcomes) == by_id(clean)
        assert daemon.metrics.value("service.daemon.stragglers_abandoned") >= 1

    def test_queue_overload_sheds_truncated_partials(self, small_lki_bundle):
        bundle = small_lki_bundle
        generator = TemplateGenerator(LKI_SCHEMA, seed=9)
        templates = generator.generate_many(
            TemplateSpec("person", size=3, num_range_vars=2, num_edge_vars=1), 5
        )
        requests = requests_from_templates(
            templates, epsilon=0.15, clients=["solo"]
        )
        daemon, outcomes = serve(bundle, requests, queue_depth=2)
        assert len(outcomes) == len(requests)
        shed = [o for o in outcomes if o.shed]
        assert len(shed) == len(requests) - 2
        for outcome in shed:
            assert outcome.ok  # shedding degrades, it does not error
            assert outcome.result.truncated
            assert outcome.result.stats.truncation_reason == "shed_queue_full"
            assert outcome.result.instances == []
        assert daemon.metrics.value("service.daemon.shed") == len(shed)


class TestWireFrontends:
    def test_unix_socket_roundtrip_matches_direct_serve(
        self, small_lki_bundle, tmp_path
    ):
        bundle = small_lki_bundle
        lines = [
            json.dumps({"id": "w1", "client": "alice", "epsilon": 0.15}),
            json.dumps({"id": "w2", "client": "bob", "epsilon": 0.1}),
            "garbage line",
            json.dumps({"id": "w1", "client": "mallory", "epsilon": 0.3}),
        ]
        _, direct = serve(
            bundle, lines, default_template=bundle.template
        )
        daemon = make_daemon(bundle, default_template=bundle.template)
        path = str(tmp_path / "daemon.sock")
        started = threading.Event()
        box = {}

        def run_server():
            async def server_main():
                ready = asyncio.Event()
                stop = asyncio.Event()
                box["loop"] = asyncio.get_running_loop()
                box["stop"] = stop
                task = asyncio.create_task(daemon.serve_unix(path, ready=ready))
                await ready.wait()
                started.set()
                await stop.wait()
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass

            asyncio.run(server_main())

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        try:
            assert started.wait(30)
            results = replay_unix(path, lines)
        finally:
            box["loop"].call_soon_threadsafe(box["stop"].set)
            thread.join(30)
            daemon.shutdown()
        for payload in results:
            payload.pop("elapsed_seconds", None)
        expected = [fingerprint(o) for o in direct]
        assert results == expected
        assert results[2]["rejected"] is True
        # Wire batches reject duplicate ids (first line wins).
        assert results[3]["rejected"] is True
        assert "duplicate request id" in results[3]["error"]

    def test_cli_one_shot_and_outputs(self, tmp_path):
        requests_file = tmp_path / "requests.jsonl"
        requests_file.write_text(
            '{"id": "a", "client": "t1", "epsilon": 0.2, "slo": "standard"}\n'
            '{"id": "b", "client": "t2", "epsilon": 0.2, "slo": "batch"}\n'
            "broken\n"
        )
        out = tmp_path / "out.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "daemon", "--requests", str(requests_file),
                "--dataset", "lki", "--scale", "0.08",
                "--workers", "2",
                "--out", str(out), "--metrics", str(metrics),
            ]
        )
        assert code == 0
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert [r["id"] for r in rows] == ["a", "b", "line-3"]
        assert rows[0]["ok"] and rows[1]["ok"]
        assert rows[2]["rejected"] is True
        snapshot = json.loads(metrics.read_text())
        counters = snapshot.get("counters", snapshot)
        assert counters["service.daemon.completed"] == 2
        assert counters["service.requests.rejected"] == 1

    def test_cli_client_requires_socket_and_requests(self):
        assert main(["daemon", "--client"]) == 2
        assert main(["daemon"]) == 2


class TestDaemonSessionFacade:
    def test_facade_serves_and_exposes_metrics(self, small_lki_bundle):
        bundle = small_lki_bundle
        session = DaemonSession(
            bundle.graph, bundle.groups, workers=2, **OPTIONS
        )
        try:
            requests = [
                session.request(bundle.template, epsilon=0.15),
                session.request(bundle.template, epsilon=0.15),
            ]
            outcomes = session.serve(requests)
        finally:
            session.shutdown()
        assert [o.request.request_id for o in outcomes] == ["req-1", "req-2"]
        assert all(o.ok for o in outcomes)
        assert session.metrics.value("service.daemon.deduplicated") == 1
