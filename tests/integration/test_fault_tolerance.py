"""Fault-injection integration tests for the parallel scheduler.

Every test runs ``ParallelQGen`` against a deterministic
:class:`~repro.runtime.faults.FaultInjector` schedule and demands the
fault-tolerance contract: the run completes, the results are identical
to sequential ``EnumQGen``, and the recovery work is visible in the
``runtime.*`` counters (retries match the injected failures exactly).
"""

from __future__ import annotations

import pytest

from repro.core import EnumQGen
from repro.core.parallel import ParallelQGen, _fork_available
from repro.runtime import Budget, FaultInjector, FaultKind, FaultSpec

pytestmark = pytest.mark.skipif(
    not _fork_available(), reason="requires fork start method"
)

WORKERS = 3
BATCH_SIZE = 8  # talent config: 24 instances -> 3 batches (0, 1, 2)
CRASH_TIMEOUT = 2.0  # crash recovery latency = batch timeout


def objective_set(result):
    return sorted((round(p.delta, 9), round(p.coverage, 9)) for p in result.instances)


def faulty_parallel(config, injector, **kwargs):
    kwargs.setdefault("workers", WORKERS)
    kwargs.setdefault("batch_size", BATCH_SIZE)
    kwargs.setdefault("batch_timeout", CRASH_TIMEOUT)
    kwargs.setdefault("retry_backoff", 0.01)
    return ParallelQGen(config, fault_injector=injector, **kwargs)


class TestWorkerCrash:
    def test_killed_worker_batch_is_reassigned(self, talent_config):
        """Kill the worker holding batch 1 mid-run; the run must still
        complete with results equal to sequential EnumQGen."""
        injector = FaultInjector([FaultSpec(FaultKind.CRASH, batch_index=1)])
        algo = faulty_parallel(talent_config, injector)
        result = algo.run()
        enum = EnumQGen(talent_config).run()
        assert objective_set(result) == objective_set(enum)
        assert not result.truncated
        # The crash surfaces as a lost batch (timeout), one retry, and a
        # dead worker observation.
        assert algo.metrics.value("runtime.worker_retries") == 1
        assert algo.metrics.value("runtime.worker_timeouts") == 1
        assert algo.metrics.value("runtime.dead_workers_detected") >= 1

    def test_crash_mid_batch(self, talent_config):
        """A crash after some evaluations (call_index > 0) loses the whole
        batch; the retry must re-verify it from scratch."""
        injector = FaultInjector(
            [FaultSpec(FaultKind.CRASH, batch_index=0, call_index=3)]
        )
        algo = faulty_parallel(talent_config, injector)
        result = algo.run()
        assert objective_set(result) == objective_set(EnumQGen(talent_config).run())
        assert algo.metrics.value("runtime.worker_retries") == 1


class TestEvaluatorError:
    def test_poisoned_batch_is_retried(self, talent_config):
        injector = FaultInjector(
            [FaultSpec(FaultKind.ERROR, batch_index=2, call_index=1)]
        )
        algo = faulty_parallel(talent_config, injector)
        result = algo.run()
        assert objective_set(result) == objective_set(EnumQGen(talent_config).run())
        assert algo.metrics.value("runtime.worker_failures") == 1
        assert algo.metrics.value("runtime.worker_retries") == 1
        assert algo.metrics.value("runtime.parent_fallbacks") == 0

    def test_retry_counter_matches_injected_faults(self, talent_config):
        """``runtime.worker_retries`` must equal the schedule's expected
        failure count exactly — over several faulted batches at once."""
        injector = FaultInjector(
            [
                FaultSpec(FaultKind.ERROR, batch_index=0),
                FaultSpec(FaultKind.ERROR, batch_index=1, times=2),
                FaultSpec(FaultKind.ERROR, batch_index=2, call_index=4),
            ]
        )
        algo = faulty_parallel(talent_config, injector, max_retries=3)
        result = algo.run()
        assert objective_set(result) == objective_set(EnumQGen(talent_config).run())
        expected = injector.expected_failures(num_batches=3, max_retries=3)
        assert expected == 4
        assert algo.metrics.value("runtime.worker_retries") == expected
        assert algo.metrics.value("runtime.worker_failures") == expected

    def test_retry_exhaustion_falls_back_to_parent(self, talent_config):
        """A batch failing beyond max_retries is evaluated in the parent;
        the run still completes with full results."""
        injector = FaultInjector(
            [FaultSpec(FaultKind.ERROR, batch_index=1, times=10)]
        )
        algo = faulty_parallel(talent_config, injector, max_retries=1)
        result = algo.run()
        assert objective_set(result) == objective_set(EnumQGen(talent_config).run())
        assert algo.metrics.value("runtime.worker_retries") == 1
        assert algo.metrics.value("runtime.parent_fallbacks") == 1


class TestSlowWorker:
    def test_straggler_batch_is_reassigned(self, talent_config):
        """A batch sleeping past the timeout is reassigned; the stale
        completion of the first attempt must not double-merge."""
        injector = FaultInjector(
            [
                FaultSpec(
                    FaultKind.SLOW, batch_index=0, delay_seconds=0.8, times=1
                )
            ]
        )
        algo = faulty_parallel(talent_config, injector, batch_timeout=0.25)
        result = algo.run()
        enum = EnumQGen(talent_config).run()
        assert objective_set(result) == objective_set(enum)
        assert algo.metrics.value("runtime.worker_timeouts") >= 1
        # Exactly-once merge: the verified count must not be inflated by
        # the straggler's late duplicate.
        assert result.stats.verified == enum.stats.verified
        assert algo.metrics.value("gen.parallelqgen.feasible") == enum.stats.feasible


class TestMixedFaults:
    def test_crash_error_and_slow_together(self, talent_config):
        injector = FaultInjector(
            [
                FaultSpec(FaultKind.CRASH, batch_index=0),
                FaultSpec(FaultKind.ERROR, batch_index=1, call_index=2),
                FaultSpec(FaultKind.SLOW, batch_index=2, delay_seconds=0.8),
            ]
        )
        algo = faulty_parallel(talent_config, injector, batch_timeout=0.4)
        result = algo.run()
        assert objective_set(result) == objective_set(EnumQGen(talent_config).run())
        assert algo.metrics.value("runtime.worker_retries") == 3

    def test_seeded_random_schedule_completes(self, talent_config):
        """A seeded random fault schedule (the chaos-mode entry point)
        still converges to the sequential result."""
        injector = FaultInjector.random(
            num_batches=3, rate=0.5, seed=3, kinds=(FaultKind.ERROR,)
        )
        algo = faulty_parallel(talent_config, injector, max_retries=3)
        result = algo.run()
        assert objective_set(result) == objective_set(EnumQGen(talent_config).run())
        assert algo.metrics.value(
            "runtime.worker_retries"
        ) == injector.expected_failures(num_batches=3, max_retries=3)


class TestFaultFreeInvariants:
    def test_no_injector_means_no_recovery_counters(self, talent_config):
        algo = ParallelQGen(
            talent_config, workers=WORKERS, batch_size=BATCH_SIZE
        )
        algo.run()
        for name in (
            "runtime.worker_retries",
            "runtime.worker_timeouts",
            "runtime.worker_failures",
            "runtime.parent_fallbacks",
            "runtime.dead_workers_detected",
        ):
            assert algo.metrics.value(name) == 0, name

    def test_counter_parity_survives_faults(self, talent_config):
        """Worker counter deltas are folded exactly once per batch even
        across retries, so faulted-run counters equal serial counters."""
        serial = ParallelQGen(talent_config, workers=1)
        serial.run()
        injector = FaultInjector(
            [
                FaultSpec(FaultKind.ERROR, batch_index=0, call_index=5),
                FaultSpec(FaultKind.CRASH, batch_index=2),
            ]
        )
        faulted = faulty_parallel(talent_config, injector)
        faulted.run()
        for name in (
            "matcher.match_calls",
            "matcher.backtrack_calls",
            "matcher.ac_removed",
            "evaluator.cache_misses",
            "gen.parallelqgen.verified",
            "gen.parallelqgen.feasible",
        ):
            assert faulted.metrics.counters().get(name) == serial.metrics.counters().get(
                name
            ), name


class TestBudgetedParallel:
    def test_budget_truncates_parallel_run(self, talent_config):
        """The parent merge loop checkpoints the budget: a tiny instance
        budget truncates the run cleanly mid-merge."""
        config = talent_config.with_budget(Budget(max_instances=4))
        algo = ParallelQGen(config, workers=WORKERS, batch_size=2)
        result = algo.run()
        assert result.truncated
        assert result.stats.truncation_reason == "max_instances"
        assert algo.metrics.value("runtime.budget.trips") == 1
