"""Property-based tests for the streaming layer (hypothesis).

Three algebraic laws lock the update semantics down:

* **Inversion** — ``invert_delta(G, Δ)`` applied after ``Δ`` restores the
  graph byte-for-byte, and a streaming session driven through the
  round-trip returns to its original answer sets and archive.
* **Commutation** — two deltas touching disjoint node sets produce the
  same graph and the same archive in either order.
* **No-op** — the empty delta changes nothing and increments nothing.

Plus the foundational differential: in-place application is extensionally
equal to materializing application, for every generated delta — and the
session's per-attribute carrier refcounts (the O(|Δ|) replacement for the
kernel-universe drift rescan) always equal a fresh full scan.
"""

from hypothesis import given, settings, strategies as st

from repro.graph.attributed_graph import AttributedGraph
from repro.groups import GroupSet, NodeGroup
from repro.matching.delta import GraphDelta, apply_delta, invert_delta
from repro.query import Instantiation, Op, QueryInstance, QueryTemplate
from repro.streaming import (
    StreamingSession,
    apply_delta_in_place,
    graph_signature,
)

SETTINGS = settings(max_examples=40, deadline=None)


def two_hop_template():
    return (
        QueryTemplate.builder("two-hop")
        .node("u0", "a")
        .node("u1", "a")
        .node("u2", "a")
        .fixed_edge("u1", "u0", "e")
        .fixed_edge("u2", "u1", "e")
        .range_var("xl", "u2", "x", Op.GE)
        .output("u0")
        .build()
    )


def build_small_graph(node_values, edges):
    graph = AttributedGraph("g")
    for i, value in enumerate(node_values):
        graph.add_node(i, "a", {"x": value})
    for source, target, label in edges:
        graph.add_edge(source, target, label)
    return graph.freeze()


@st.composite
def graph_and_delta(draw, with_attrs=True):
    """A small frozen graph plus an applicable delta."""
    n = draw(st.integers(min_value=3, max_value=8))
    values = [draw(st.integers(min_value=0, max_value=4)) for _ in range(n)]
    possible = [(i, j, "e") for i in range(n) for j in range(n) if i != j]
    present = draw(st.lists(st.sampled_from(possible), max_size=14, unique=True))
    graph = build_small_graph(values, present)

    absent = [key for key in possible if key not in set(present)]
    inserts = tuple(
        draw(st.lists(st.sampled_from(absent), max_size=3, unique=True))
        if absent
        else []
    )
    deletes = tuple(
        draw(st.lists(st.sampled_from(present), max_size=3, unique=True))
        if present
        else []
    )
    attrs = ()
    if with_attrs:
        attrs = tuple(
            (
                draw(st.integers(min_value=0, max_value=n - 1)),
                "x",
                draw(st.integers(min_value=0, max_value=4)),
            )
            for _ in range(draw(st.integers(min_value=0, max_value=2)))
        )
    return graph, GraphDelta(
        insert_edges=inserts, delete_edges=deletes, set_attributes=attrs
    )


def make_session(graph, **options):
    groups = GroupSet(
        [NodeGroup("all", frozenset(graph.node_ids()), 1)]
    )
    options.setdefault("epsilon", 0.2)
    options.setdefault("max_domain_values", 4)
    return StreamingSession(graph, two_hop_template(), groups, **options)


def archive_fingerprint(archive):
    return sorted(
        (box, ev.instance.instantiation.key, tuple(sorted(ev.matches)),
         ev.delta, ev.coverage, ev.feasible)
        for box, ev in archive.boxes().items()
    )


class TestInPlaceEquivalence:
    @SETTINGS
    @given(setup=graph_and_delta())
    def test_in_place_equals_materializing(self, setup):
        graph, delta = setup
        materialized = apply_delta(graph, delta)
        receipt = apply_delta_in_place(graph, delta)
        assert graph_signature(graph) == graph_signature(materialized)
        assert receipt.touched_nodes == delta.touched_nodes


class TestInversion:
    @SETTINGS
    @given(setup=graph_and_delta())
    def test_inverse_restores_graph(self, setup):
        graph, delta = setup
        original = graph_signature(graph)
        inverse = invert_delta(graph, delta)
        apply_delta_in_place(graph, delta)
        apply_delta_in_place(graph, inverse)
        assert graph_signature(graph) == original

    @SETTINGS
    @given(setup=graph_and_delta(), bound=st.integers(min_value=0, max_value=4))
    def test_round_trip_restores_session_state(self, setup, bound):
        graph, delta = setup
        session = make_session(graph)
        session.offer(
            [QueryInstance(Instantiation(two_hop_template(), {"xl": bound}))]
        )
        matches_before = [e.evaluated.matches for e in session.ledger]
        archive_before = archive_fingerprint(session.archive)
        signature_before = graph_signature(session.graph)

        inverse = invert_delta(session.graph, delta)
        session.update(delta)
        session.update(inverse)

        assert graph_signature(session.graph) == signature_before
        assert [e.evaluated.matches for e in session.ledger] == matches_before
        assert archive_fingerprint(session.archive) == archive_before


@st.composite
def graph_and_disjoint_deltas(draw):
    """A graph plus two deltas over disjoint node halves (they commute)."""
    n = draw(st.integers(min_value=6, max_value=10))
    values = [draw(st.integers(min_value=0, max_value=4)) for _ in range(n)]
    half = n // 2
    low = list(range(half))
    high = list(range(half, n))

    def edges_within(ids):
        return [(i, j, "e") for i in ids for j in ids if i != j]

    present_low = draw(
        st.lists(st.sampled_from(edges_within(low)), max_size=6, unique=True)
    )
    present_high = draw(
        st.lists(st.sampled_from(edges_within(high)), max_size=6, unique=True)
    )
    graph = build_small_graph(values, present_low + present_high)

    def delta_for(ids, present):
        pool = edges_within(ids)
        absent = [key for key in pool if key not in set(present)]
        inserts = tuple(
            draw(st.lists(st.sampled_from(absent), max_size=2, unique=True))
            if absent
            else []
        )
        deletes = tuple(
            draw(st.lists(st.sampled_from(present), max_size=2, unique=True))
            if present
            else []
        )
        attrs = tuple(
            (draw(st.sampled_from(ids)), "x", draw(st.integers(0, 4)))
            for _ in range(draw(st.integers(min_value=0, max_value=1)))
        )
        return GraphDelta(
            insert_edges=inserts, delete_edges=deletes, set_attributes=attrs
        )

    return graph, delta_for(low, present_low), delta_for(high, present_high)


class TestCommutation:
    @SETTINGS
    @given(setup=graph_and_disjoint_deltas(), bound=st.integers(0, 4))
    def test_disjoint_deltas_commute(self, setup, bound):
        graph, first, second = setup
        assert not (first.touched_nodes & second.touched_nodes)
        instance = QueryInstance(Instantiation(two_hop_template(), {"xl": bound}))

        results = []
        for order in ((first, second), (second, first)):
            session = make_session(apply_delta(graph, GraphDelta()))
            session.offer([instance])
            for delta in order:
                session.update(delta)
            results.append(
                (
                    graph_signature(session.graph),
                    [e.evaluated.matches for e in session.ledger],
                    archive_fingerprint(session.archive),
                )
            )
        assert results[0] == results[1]


@st.composite
def attr_delta_stream(draw):
    """A graph plus attribute-only deltas that insert/rewrite/remove.

    Values of ``None`` remove the attribute and the fresh name ``"y"``
    can appear and vanish, so the stream exercises every carrier-count
    transition — including kernel-universe drift in both directions
    (a name gaining its first output-label carrier / losing its last).
    """
    n = draw(st.integers(min_value=3, max_value=6))
    values = [draw(st.integers(min_value=0, max_value=4)) for _ in range(n)]
    possible = [(i, j, "e") for i in range(n) for j in range(n) if i != j]
    present = draw(st.lists(st.sampled_from(possible), max_size=8, unique=True))
    graph = build_small_graph(values, present)
    deltas = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        attrs = tuple(
            (
                draw(st.integers(min_value=0, max_value=n - 1)),
                draw(st.sampled_from(("x", "y"))),
                draw(st.one_of(st.none(), st.integers(min_value=0, max_value=4))),
            )
            for _ in range(draw(st.integers(min_value=1, max_value=3)))
        )
        deltas.append(GraphDelta(set_attributes=attrs))
    return graph, deltas


class TestCarrierRefcounts:
    @SETTINGS
    @given(setup=attr_delta_stream(), bound=st.integers(min_value=0, max_value=4))
    def test_refcounts_equal_fresh_scan(self, setup, bound):
        """Receipt-maintained carrier counts ≡ a full-graph rescan —
        hence identical kernel-universe drift decisions — after every
        update, for both scoring modes."""
        graph, deltas = setup
        for scoring in (False, True):
            session = make_session(
                apply_delta(graph, GraphDelta()), use_delta_scoring=scoring
            )
            session.offer(
                [QueryInstance(Instantiation(two_hop_template(), {"xl": bound}))]
            )
            assert session._carrier_counts == session._scan_carrier_counts()
            for delta in deltas:
                session.update(delta)
                assert session._carrier_counts == session._scan_carrier_counts()


class TestEmptyDelta:
    @SETTINGS
    @given(setup=graph_and_delta(), bound=st.integers(0, 4))
    def test_empty_delta_is_total_noop(self, setup, bound):
        graph, _ = setup
        session = make_session(graph)
        session.offer(
            [QueryInstance(Instantiation(two_hop_template(), {"xl": bound}))]
        )
        signature = graph_signature(session.graph)
        archive = archive_fingerprint(session.archive)
        counters = dict(session.metrics.counters())

        report = session.update(GraphDelta())

        assert report.is_empty
        assert report.receipt is None
        assert graph_signature(session.graph) == signature
        assert archive_fingerprint(session.archive) == archive
        # Zero counter increments: the no-op touches no metric at all.
        assert dict(session.metrics.counters()) == counters
        assert session.context.revision == 0
