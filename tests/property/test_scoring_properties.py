"""Property-based tests for the delta-scoring subsystem.

Two contracts:

* ``DiversityMeasure`` modes agree: ``exact`` ≡ ``decomposed`` within
  1e-9 on answer sets straddling ``_DECOMPOSE_THRESHOLD`` (the satellite
  requirement — the decomposition must be correct on both sides of the
  auto-mode switch, not just for tiny answers);
* the delta-scoring engine is **bitwise** faithful: along random
  remove/add chains, every ``ScoreEngine.score`` result equals the
  measures' own from-scratch ``of()`` with ``==``, not approximately.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.measures import (
    CoverageMeasure,
    DiversityMeasure,
    _DECOMPOSE_THRESHOLD,
)
from repro.graph.attributed_graph import AttributedGraph
from repro.groups.groups import GroupSet, NodeGroup
from repro.obs.registry import MetricsRegistry
from repro.scoring import ScoreEngine, ScoreState

SETTINGS = settings(max_examples=30, deadline=None)


def _graph(n: int, seed: int) -> AttributedGraph:
    """Deterministic graph with numeric, categorical and missing attributes.

    Each attribute is type-homogeneous across nodes ("extra" flips type
    per *graph*, never within one): the decomposed Gower pair-sum scores
    an attribute with mixed present types as all-categorical while the
    exact path scores its numeric-numeric pairs numerically, so mode
    equivalence is only promised for homogeneous attributes.
    """
    graph = AttributedGraph("prop-scoring")
    extra_numeric = seed % 2 == 0
    for i in range(n):
        r = (i * 2654435761 + seed * 40503) & 0xFFFF
        attrs = {}
        if r % 5 != 0:
            attrs["num"] = (r >> 3) % 97
        if r % 4 != 1:
            attrs["cat"] = ("x", "y", "z", "w")[(r >> 7) % 4]
        if r % 7 == 0:
            attrs["extra"] = (r % 13) if extra_numeric else f"v{r % 6}"
        graph.add_node(i, "m", attrs)
    return graph.freeze()


# Sizes straddling the auto-mode switch (threshold is 64).
straddle_sizes = st.integers(
    min_value=2, max_value=_DECOMPOSE_THRESHOLD + 16
)


class TestModeEquivalence:
    @SETTINGS
    @given(
        n=straddle_sizes,
        seed=st.integers(min_value=0, max_value=1000),
        lam=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_exact_equals_decomposed_across_threshold(self, n, seed, lam):
        graph = _graph(n, seed)
        exact = DiversityMeasure(graph, "m", lam=lam, mode="exact")
        fast = DiversityMeasure(graph, "m", lam=lam, mode="decomposed")
        answer = set(graph.node_ids())
        assert abs(exact.of(answer) - fast.of(answer)) < 1e-9

    @SETTINGS
    @given(
        n=straddle_sizes,
        seed=st.integers(min_value=0, max_value=1000),
        lam=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_auto_equals_exact_across_threshold(self, n, seed, lam):
        """auto must agree with exact whichever side of the switch n is on."""
        graph = _graph(n, seed)
        exact = DiversityMeasure(graph, "m", lam=lam, mode="exact")
        auto = DiversityMeasure(graph, "m", lam=lam, mode="auto")
        answer = set(graph.node_ids())
        assert abs(exact.of(answer) - auto.of(answer)) < 1e-9


@st.composite
def delta_chain(draw):
    """An initial answer plus remove/add steps over a fixed node universe."""
    universe = draw(st.integers(min_value=20, max_value=90))
    seed = draw(st.integers(min_value=0, max_value=1000))
    initial = draw(
        st.sets(
            st.integers(min_value=0, max_value=universe - 1),
            min_size=2,
            max_size=universe,
        )
    )
    steps = draw(
        st.lists(
            st.tuples(
                st.sets(st.integers(min_value=0, max_value=universe - 1), max_size=5),
                st.sets(st.integers(min_value=0, max_value=universe - 1), max_size=3),
            ),
            min_size=1,
            max_size=6,
        )
    )
    return universe, seed, initial, steps


class TestEngineBitwiseFaithful:
    @SETTINGS
    @given(chain=delta_chain(), lam=st.floats(min_value=0.0, max_value=1.0))
    def test_chain_scores_equal_from_scratch(self, chain, lam):
        universe, seed, answer, steps = chain
        graph = _graph(universe, seed)
        groups = GroupSet(
            [
                NodeGroup("a", frozenset(range(0, universe, 3)), 1),
                NodeGroup("b", frozenset(range(1, universe, 3)), 1),
            ]
        )
        diversity = DiversityMeasure(graph, "m", lam=lam)
        coverage = CoverageMeasure(groups)
        engine = ScoreEngine(
            graph, diversity, coverage, metrics=MetricsRegistry(),
            max_delta_fraction=1.0,
        )
        parent = None
        for removed, added in [(set(), set())] + steps:
            answer = (answer - removed) | added
            scored = engine.score(frozenset(answer), parent)
            # Bitwise equality — not approx: the contract of the engine.
            assert scored.delta == diversity.of(answer)
            assert scored.coverage == coverage.of(answer)
            assert scored.feasible == coverage.is_feasible(answer)
            parent = frozenset(answer)

    @SETTINGS
    @given(chain=delta_chain())
    def test_derived_state_equals_rebuilt_state(self, chain):
        universe, seed, answer, steps = chain
        graph = _graph(universe, seed)
        groups = GroupSet([NodeGroup("g", frozenset(range(0, universe, 2)), 1)])
        attributes = ("cat", "extra", "num")
        state = ScoreState.build(answer, graph, attributes, groups)
        for removed, added in steps:
            removed = frozenset(removed & answer)
            added = frozenset(added - (answer - removed))
            answer = (answer - removed) | added
            state = state.derive(removed, added, graph, groups)
            assert state.signature() == ScoreState.build(
                answer, graph, attributes, groups
            ).signature()
