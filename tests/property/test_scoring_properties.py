"""Property-based tests for the delta-scoring subsystem.

Three contracts:

* ``DiversityMeasure`` modes agree: ``exact`` ≡ ``decomposed`` within
  1e-9 on answer sets straddling ``_DECOMPOSE_THRESHOLD`` (the satellite
  requirement — the decomposition must be correct on both sides of the
  auto-mode switch, not just for tiny answers);
* the delta-scoring engine is **bitwise** faithful: along random
  remove/add chains, every ``ScoreEngine.score`` result equals the
  measures' own from-scratch ``of()`` with ``==``, not approximately;
* in-place patching is exact: a ``ScoreState`` repaired through
  ``patch_attribute`` / ``patch_membership`` under random attribute
  churn (with rule-built group memberships moving underneath) has the
  same ``signature()`` as a from-scratch build on the mutated graph.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.measures import (
    CoverageMeasure,
    DiversityMeasure,
    _DECOMPOSE_THRESHOLD,
)
from repro.graph.attributed_graph import AttributedGraph
from repro.groups import GroupRule, system_from_rules
from repro.groups.groups import GroupSet, NodeGroup
from repro.matching.delta import GraphDelta
from repro.obs.registry import MetricsRegistry
from repro.scoring import ScoreEngine, ScoreState

SETTINGS = settings(max_examples=30, deadline=None)


def _graph(n: int, seed: int) -> AttributedGraph:
    """Deterministic graph with numeric, categorical and missing attributes.

    Each attribute is type-homogeneous across nodes ("extra" flips type
    per *graph*, never within one): the decomposed Gower pair-sum scores
    an attribute with mixed present types as all-categorical while the
    exact path scores its numeric-numeric pairs numerically, so mode
    equivalence is only promised for homogeneous attributes.
    """
    graph = AttributedGraph("prop-scoring")
    extra_numeric = seed % 2 == 0
    for i in range(n):
        r = (i * 2654435761 + seed * 40503) & 0xFFFF
        attrs = {}
        if r % 5 != 0:
            attrs["num"] = (r >> 3) % 97
        if r % 4 != 1:
            attrs["cat"] = ("x", "y", "z", "w")[(r >> 7) % 4]
        if r % 7 == 0:
            attrs["extra"] = (r % 13) if extra_numeric else f"v{r % 6}"
        graph.add_node(i, "m", attrs)
    return graph.freeze()


# Sizes straddling the auto-mode switch (threshold is 64).
straddle_sizes = st.integers(
    min_value=2, max_value=_DECOMPOSE_THRESHOLD + 16
)


class TestModeEquivalence:
    @SETTINGS
    @given(
        n=straddle_sizes,
        seed=st.integers(min_value=0, max_value=1000),
        lam=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_exact_equals_decomposed_across_threshold(self, n, seed, lam):
        graph = _graph(n, seed)
        exact = DiversityMeasure(graph, "m", lam=lam, mode="exact")
        fast = DiversityMeasure(graph, "m", lam=lam, mode="decomposed")
        answer = set(graph.node_ids())
        assert abs(exact.of(answer) - fast.of(answer)) < 1e-9

    @SETTINGS
    @given(
        n=straddle_sizes,
        seed=st.integers(min_value=0, max_value=1000),
        lam=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_auto_equals_exact_across_threshold(self, n, seed, lam):
        """auto must agree with exact whichever side of the switch n is on."""
        graph = _graph(n, seed)
        exact = DiversityMeasure(graph, "m", lam=lam, mode="exact")
        auto = DiversityMeasure(graph, "m", lam=lam, mode="auto")
        answer = set(graph.node_ids())
        assert abs(exact.of(answer) - auto.of(answer)) < 1e-9


@st.composite
def delta_chain(draw):
    """An initial answer plus remove/add steps over a fixed node universe."""
    universe = draw(st.integers(min_value=20, max_value=90))
    seed = draw(st.integers(min_value=0, max_value=1000))
    initial = draw(
        st.sets(
            st.integers(min_value=0, max_value=universe - 1),
            min_size=2,
            max_size=universe,
        )
    )
    steps = draw(
        st.lists(
            st.tuples(
                st.sets(st.integers(min_value=0, max_value=universe - 1), max_size=5),
                st.sets(st.integers(min_value=0, max_value=universe - 1), max_size=3),
            ),
            min_size=1,
            max_size=6,
        )
    )
    return universe, seed, initial, steps


class TestEngineBitwiseFaithful:
    @SETTINGS
    @given(chain=delta_chain(), lam=st.floats(min_value=0.0, max_value=1.0))
    def test_chain_scores_equal_from_scratch(self, chain, lam):
        universe, seed, answer, steps = chain
        graph = _graph(universe, seed)
        groups = GroupSet(
            [
                NodeGroup("a", frozenset(range(0, universe, 3)), 1),
                NodeGroup("b", frozenset(range(1, universe, 3)), 1),
            ]
        )
        diversity = DiversityMeasure(graph, "m", lam=lam)
        coverage = CoverageMeasure(groups)
        engine = ScoreEngine(
            graph, diversity, coverage, metrics=MetricsRegistry(),
            max_delta_fraction=1.0,
        )
        parent = None
        for removed, added in [(set(), set())] + steps:
            answer = (answer - removed) | added
            scored = engine.score(frozenset(answer), parent)
            # Bitwise equality — not approx: the contract of the engine.
            assert scored.delta == diversity.of(answer)
            assert scored.coverage == coverage.of(answer)
            assert scored.feasible == coverage.is_feasible(answer)
            parent = frozenset(answer)

    @SETTINGS
    @given(chain=delta_chain())
    def test_derived_state_equals_rebuilt_state(self, chain):
        universe, seed, answer, steps = chain
        graph = _graph(universe, seed)
        groups = GroupSet([NodeGroup("g", frozenset(range(0, universe, 2)), 1)])
        attributes = ("cat", "extra", "num")
        state = ScoreState.build(answer, graph, attributes, groups)
        for removed, added in steps:
            removed = frozenset(removed & answer)
            added = frozenset(added - (answer - removed))
            answer = (answer - removed) | added
            state = state.derive(removed, added, graph, groups)
            assert state.signature() == ScoreState.build(
                answer, graph, attributes, groups
            ).signature()


# Overlapping predicates over "grp": churning that attribute moves nodes
# between groups (including into/out of both "ga" and the umbrella "gab").
PATCH_RULES = (
    GroupRule("ga", {"grp": "a"}, 0, label="m"),
    GroupRule("gb", {"grp": "b"}, 0, label="m"),
    GroupRule("gab", {"grp": ("a", "b")}, 0, label="m"),
)

_DOMAINS = {
    "num": tuple(range(8)),
    "cat": ("x", "y", "z"),
    "grp": ("a", "b", "c"),
}


def _churn_graph(n: int, seed: int) -> AttributedGraph:
    """Like :func:`_graph` but with a rule-carrying "grp" attribute."""
    graph = AttributedGraph("prop-patching")
    for i in range(n):
        r = (i * 2654435761 + seed * 40503) & 0xFFFF
        attrs = {"grp": _DOMAINS["grp"][r % 3]}
        if r % 5 != 0:
            attrs["num"] = _DOMAINS["num"][(r >> 3) % 8]
        if r % 4 != 1:
            attrs["cat"] = _DOMAINS["cat"][(r >> 7) % 3]
        graph.add_node(i, "m", attrs)
    return graph.freeze()


@st.composite
def attribute_churn(draw):
    """An answer set plus random in-place attribute rewrites/removals."""
    n = draw(st.integers(min_value=8, max_value=30))
    seed = draw(st.integers(min_value=0, max_value=1000))
    answer = draw(
        st.sets(st.integers(min_value=0, max_value=n - 1), min_size=2)
    )
    changes = []
    for _ in range(draw(st.integers(min_value=1, max_value=8))):
        name = draw(st.sampled_from(("num", "cat", "grp")))
        value = draw(st.one_of(st.none(), st.sampled_from(_DOMAINS[name])))
        changes.append(
            (draw(st.integers(min_value=0, max_value=n - 1)), name, value)
        )
    return n, seed, answer, changes


class TestPatchedStateExactness:
    @SETTINGS
    @given(setup=attribute_churn())
    def test_patched_state_equals_rebuilt(self, setup):
        """patch_attribute + patch_membership ≡ from-scratch build."""
        n, seed, answer, changes = setup
        graph = _churn_graph(n, seed)
        system = system_from_rules(graph, PATCH_RULES)
        attributes = ("cat", "num")
        state = ScoreState.build(answer, graph, attributes, system)
        for node, name, value in changes:
            old = graph._set_attribute_in_place(node, name, value)
            if node in answer:
                state.patch_attribute(node, name, old, value)
        diff = system.repair_membership(
            GraphDelta(set_attributes=tuple(changes))
        )
        state.patch_membership(diff)
        # The repaired system agrees with a fresh rule scan everywhere...
        fresh = system_from_rules(graph, PATCH_RULES)
        for node in graph.node_ids():
            assert set(system.groups_of(node)) == set(fresh.groups_of(node))
        # ...and the patched statistics are byte-identical to rebuilt ones.
        rebuilt = ScoreState.build(answer, graph, attributes, fresh)
        assert state.signature() == rebuilt.signature()
