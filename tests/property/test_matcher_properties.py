"""Property-based tests: the matcher against brute-force enumeration.

Random small graphs (two labels, one numeric attribute, random edges) are
matched against a fixed family of query shapes (path, star, triangle, with
and without literals / optional edges); the backtracking matcher must agree
with the exponential reference oracle on every draw.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graph.attributed_graph import AttributedGraph
from repro.matching import SubgraphMatcher, naive_match_set
from repro.query import Instantiation, Op, QueryInstance, QueryTemplate

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_graphs(draw):
    """A random graph with ≤7 nodes, labels a/b, attribute x ∈ [0, 5]."""
    n = draw(st.integers(min_value=2, max_value=7))
    graph = AttributedGraph("random")
    for i in range(n):
        label = draw(st.sampled_from(["a", "b"]))
        x = draw(st.integers(min_value=0, max_value=5))
        graph.add_node(i, label, {"x": x})
    possible = [(i, j) for i in range(n) for j in range(n) if i != j]
    chosen = draw(
        st.lists(st.sampled_from(possible), max_size=min(14, len(possible)), unique=True)
    )
    for source, target in chosen:
        graph.add_edge(source, target, "e")
    return graph.freeze()


def path_template():
    return (
        QueryTemplate.builder("path")
        .node("u0", "a")
        .node("u1", "b")
        .fixed_edge("u1", "u0", "e")
        .range_var("xl", "u1", "x", Op.GE)
        .output("u0")
        .build()
    )


def star_template():
    return (
        QueryTemplate.builder("star")
        .node("u0", "a")
        .node("u1", "b")
        .node("u2", "b")
        .fixed_edge("u1", "u0", "e")
        .edge_var("xe", "u2", "u0", "e")
        .range_var("xl", "u0", "x", Op.LE)
        .output("u0")
        .build()
    )


def triangle_template():
    return (
        QueryTemplate.builder("triangle")
        .node("u0", "a")
        .node("u1", "a")
        .node("u2", "a")
        .fixed_edge("u0", "u1", "e")
        .fixed_edge("u1", "u2", "e")
        .edge_var("xe", "u2", "u0", "e")
        .output("u0")
        .build()
    )


TEMPLATES = [path_template(), star_template(), triangle_template()]


class TestMatcherAgainstOracle:
    @SETTINGS
    @given(
        graph=random_graphs(),
        template_index=st.integers(min_value=0, max_value=2),
        bound=st.integers(min_value=0, max_value=5),
        edge_bit=st.integers(min_value=0, max_value=1),
    )
    def test_homomorphism_semantics(self, graph, template_index, bound, edge_bit):
        template = TEMPLATES[template_index]
        bindings = {}
        if "xl" in template.variable_names():
            bindings["xl"] = bound
        if "xe" in template.variable_names():
            bindings["xe"] = edge_bit
        instance = QueryInstance(Instantiation(template, bindings))
        matcher = SubgraphMatcher(graph)
        assert matcher.match(instance).matches == naive_match_set(graph, instance)

    @SETTINGS
    @given(
        graph=random_graphs(),
        template_index=st.integers(min_value=0, max_value=2),
        edge_bit=st.integers(min_value=0, max_value=1),
    )
    def test_injective_semantics(self, graph, template_index, edge_bit):
        template = TEMPLATES[template_index]
        bindings = {}
        if "xl" in template.variable_names():
            bindings["xl"] = 0 if template.variable("xl").op is Op.GE else 5
        if "xe" in template.variable_names():
            bindings["xe"] = edge_bit
        instance = QueryInstance(Instantiation(template, bindings))
        matcher = SubgraphMatcher(graph, injective=True)
        assert matcher.match(instance).matches == naive_match_set(
            graph, instance, injective=True
        )

    @SETTINGS
    @given(graph=random_graphs(), bound=st.integers(min_value=0, max_value=5))
    def test_candidates_superset_of_matches(self, graph, bound):
        template = path_template()
        instance = QueryInstance(Instantiation(template, {"xl": bound}))
        result = SubgraphMatcher(graph).match(instance)
        assert result.matches <= frozenset(result.candidates.get("u0", set()))
