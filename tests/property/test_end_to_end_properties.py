"""Randomized end-to-end validation of the generation algorithms.

Hypothesis draws whole configurations — graph, groups, epsilon — and the
lattice algorithms must deliver valid ε-Pareto sets against the brute-force
universe on every draw. This is the highest-leverage test in the suite: a
bug anywhere (matcher, measures, lattice, pruning, archive) surfaces here.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import BiQGen, EnumQGen, GenerationConfig, GroupSet, NodeGroup, RfQGen
from repro.core.evaluator import InstanceEvaluator
from repro.core.lattice import InstanceLattice
from repro.core.pareto import dominates, epsilon_dominates
from repro.graph.attributed_graph import AttributedGraph
from repro.query import Literal, Op, QueryTemplate

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def fixed_template():
    """Recommendation template over the random graphs below."""
    return (
        QueryTemplate.builder("e2e")
        .node("u0", "person", Literal("kind", Op.EQ, "target"))
        .node("u1", "person")
        .fixed_edge("u1", "u0", "rec")
        .edge_var("xe", "u1", "u1x", "rec")
        .node("u1x", "person")
        .range_var("xl", "u1", "score", Op.GE)
        .output("u0")
        .build()
    )


@st.composite
def configurations(draw):
    n_targets = draw(st.integers(min_value=4, max_value=8))
    n_recommenders = draw(st.integers(min_value=2, max_value=4))
    graph = AttributedGraph("e2e")
    targets = []
    for i in range(n_targets):
        graph.add_node(
            i,
            "person",
            {
                "kind": "target",
                "score": draw(st.integers(min_value=0, max_value=5)),
                "group": draw(st.sampled_from(["a", "b"])),
            },
        )
        targets.append(i)
    recommenders = []
    for i in range(n_targets, n_targets + n_recommenders):
        graph.add_node(
            i,
            "person",
            {"kind": "rec", "score": draw(st.integers(min_value=0, max_value=5))},
        )
        recommenders.append(i)
    # Each recommender recommends a random non-empty subset of targets,
    # and possibly another recommender (feeding the optional edge).
    for r in recommenders:
        chosen = draw(
            st.sets(st.sampled_from(targets), min_size=1, max_size=n_targets)
        )
        for t in chosen:
            graph.add_edge(r, t, "rec")
        if draw(st.booleans()) and len(recommenders) > 1:
            other = draw(st.sampled_from([x for x in recommenders if x != r]))
            graph.add_edge(r, other, "rec")
    graph.freeze()

    group_a = frozenset(t for t in targets if graph.attribute(t, "group") == "a")
    group_b = frozenset(t for t in targets if graph.attribute(t, "group") == "b")
    if not group_a or not group_b:
        # Degenerate split: make singleton groups from the two ends.
        group_a, group_b = frozenset({targets[0]}), frozenset({targets[-1]})
    groups = GroupSet(
        [
            NodeGroup("a", group_a, min(1, len(group_a))),
            NodeGroup("b", group_b, min(1, len(group_b))),
        ]
    )
    epsilon = draw(st.sampled_from([0.05, 0.2, 0.5, 1.0]))
    return GenerationConfig(
        graph, fixed_template(), groups, epsilon=epsilon, max_domain_values=4
    )


def feasible_universe(config):
    evaluator = InstanceEvaluator(config)
    lattice = InstanceLattice(config)
    return [
        e
        for e in (evaluator.evaluate(i) for i in lattice.enumerate_instances())
        if e.feasible
    ]


class TestEndToEnd:
    @SETTINGS
    @given(config=configurations())
    def test_rfqgen_is_valid_epsilon_pareto_set(self, config):
        universe = feasible_universe(config)
        result = RfQGen(config).run()
        assert len(result.instances) == 0 if not universe else True
        for point in universe:
            assert any(
                epsilon_dominates(kept, point, config.epsilon)
                for kept in result.instances
            )
        for kept in result.instances:
            assert not any(dominates(p, kept) for p in universe)

    @SETTINGS
    @given(config=configurations())
    def test_biqgen_is_valid_epsilon_pareto_set(self, config):
        universe = feasible_universe(config)
        result = BiQGen(config).run()
        slack = (1 + config.epsilon) ** 2 - 1
        for point in universe:
            assert any(
                epsilon_dominates(kept, point, slack) for kept in result.instances
            )
        for kept in result.instances:
            assert not any(dominates(p, kept) for p in universe)

    @SETTINGS
    @given(config=configurations())
    def test_pruned_algorithms_never_exceed_enum_work(self, config):
        enum = EnumQGen(config).run()
        rf = RfQGen(config).run()
        assert rf.stats.verified <= enum.stats.verified


class TestTemplateRefinementSoundness:
    """Template refinement is an optimization: quality must be unchanged.

    This is the property that caught the quantization/ball interaction bug
    (see tests/integration/test_template_refinement_regression.py).
    """

    @SETTINGS
    @given(config=configurations())
    def test_on_off_equivalent(self, config):
        from dataclasses import replace

        on = RfQGen(config).run()
        off = RfQGen(replace(config, use_template_refinement=False)).run()
        for point in off.instances:
            assert any(
                epsilon_dominates(kept, point, config.epsilon)
                for kept in on.instances
            ), ("refinement lost", point)
        for point in on.instances:
            assert any(
                epsilon_dominates(kept, point, config.epsilon)
                for kept in off.instances
            ), ("refinement invented", point)
