"""Property-based tests for the metrics registry.

The registry is the foundation the regression gates stand on, so its own
accounting must be beyond suspicion: counters are exact sums, histogram
quantiles stay inside the observed range, and the JSON export round-trips
the snapshot losslessly.
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.obs import MetricsRegistry

SETTINGS = settings(max_examples=100, deadline=None)

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


@SETTINGS
@given(st.lists(st.integers(min_value=0, max_value=1000), max_size=50))
def test_counter_is_exact_sum(amounts):
    registry = MetricsRegistry()
    for amount in amounts:
        registry.inc("c", amount)
    assert registry.value("c") == sum(amounts)


@SETTINGS
@given(
    st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 100)),
        max_size=60,
    )
)
def test_counters_are_independent_and_monotone(events):
    registry = MetricsRegistry()
    shadow = {"a": 0, "b": 0, "c": 0}
    for name, amount in events:
        before = registry.value(name)
        registry.inc(name, amount)
        assert registry.value(name) >= before  # monotone
        shadow[name] += amount
    for name, expected in shadow.items():
        assert registry.value(name) == expected


@SETTINGS
@given(st.lists(finite_floats, min_size=1, max_size=200))
def test_histogram_quantiles_bounded_by_observations(samples):
    registry = MetricsRegistry()
    for sample in samples:
        registry.observe("h", sample)
    histogram = registry.histogram("h")
    assert histogram.count == len(samples)
    for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
        value = histogram.quantile(q)
        assert min(samples) <= value <= max(samples)
    assert histogram.quantile(0.0) == min(samples)
    assert histogram.quantile(1.0) == max(samples)
    summary = histogram.summary()
    assert summary["min"] <= summary["p50"] <= summary["p90"] <= summary["max"]


@SETTINGS
@given(
    st.dictionaries(
        st.text(st.characters(categories=["Ll"]), min_size=1, max_size=8),
        st.integers(0, 10_000),
        max_size=20,
    ),
    st.lists(finite_floats, max_size=30),
)
def test_json_roundtrips_snapshot(counters, samples):
    registry = MetricsRegistry()
    for name, value in counters.items():
        registry.inc(name, value)
    for sample in samples:
        registry.observe("durations", sample)
    assert json.loads(registry.to_json()) == json.loads(
        json.dumps(registry.snapshot())
    )
    assert json.loads(registry.to_json())["counters"] == counters


@SETTINGS
@given(
    st.lists(st.tuples(st.sampled_from(["x", "y"]), st.integers(0, 50)), max_size=40),
    st.lists(st.tuples(st.sampled_from(["x", "z"]), st.integers(0, 50)), max_size=40),
)
def test_absorb_adds_counters(left_events, right_events):
    left = MetricsRegistry()
    right = MetricsRegistry()
    for name, amount in left_events:
        left.inc(name, amount)
    for name, amount in right_events:
        right.inc(name, amount)
    expected = dict(left.counters())
    for name, value in right.counters().items():
        expected[name] = expected.get(name, 0) + value
    left.absorb(right)
    assert left.counters() == {k: expected[k] for k in sorted(expected)}
