"""Differential testing: bitset and columnar engines vs the set engine.

All engines implement the same contract (initial candidates → AC-3 →
backtracking) over different data representations, so on every random draw
they must return identical match sets *and* identical candidate maps — the
bitset engine's masks and the columnar engine's compiled-column/CSR
kernels are just other encodings of the same pools. The exponential oracle
in ``matching/reference.py`` anchors all of them to the semantics. The
suite also covers the incremental parent-seeded path (mask restriction
must equal set restriction) and ``injective=True``.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graph.attributed_graph import AttributedGraph
from repro.matching import SubgraphMatcher, naive_match_set
from repro.matching.incremental import IncrementalVerifier
from repro.query import Instantiation, Op, QueryInstance, QueryTemplate

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_graphs(draw):
    """A random graph with ≤7 nodes, labels a/b, attribute x ∈ [0, 5]."""
    n = draw(st.integers(min_value=2, max_value=7))
    graph = AttributedGraph("random")
    for i in range(n):
        label = draw(st.sampled_from(["a", "b"]))
        x = draw(st.integers(min_value=0, max_value=5))
        graph.add_node(i, label, {"x": x})
    possible = [(i, j) for i in range(n) for j in range(n) if i != j]
    chosen = draw(
        st.lists(st.sampled_from(possible), max_size=min(14, len(possible)), unique=True)
    )
    for source, target in chosen:
        graph.add_edge(source, target, "e")
    return graph.freeze()


def path_template():
    return (
        QueryTemplate.builder("path")
        .node("u0", "a")
        .node("u1", "b")
        .fixed_edge("u1", "u0", "e")
        .range_var("xl", "u1", "x", Op.GE)
        .output("u0")
        .build()
    )


def star_template():
    return (
        QueryTemplate.builder("star")
        .node("u0", "a")
        .node("u1", "b")
        .node("u2", "b")
        .fixed_edge("u1", "u0", "e")
        .edge_var("xe", "u2", "u0", "e")
        .range_var("xl", "u0", "x", Op.LE)
        .output("u0")
        .build()
    )


def triangle_template():
    return (
        QueryTemplate.builder("triangle")
        .node("u0", "a")
        .node("u1", "a")
        .node("u2", "a")
        .fixed_edge("u0", "u1", "e")
        .fixed_edge("u1", "u2", "e")
        .edge_var("xe", "u2", "u0", "e")
        .output("u0")
        .build()
    )


TEMPLATES = [path_template(), star_template(), triangle_template()]


def build_instance(template, bound, edge_bit):
    bindings = {}
    if "xl" in template.variable_names():
        bindings["xl"] = bound
    if "xe" in template.variable_names():
        bindings["xe"] = edge_bit
    return QueryInstance(Instantiation(template, bindings))


def assert_results_equal(by_set, by_bit, graph=None, instance=None):
    assert by_set.matches == by_bit.matches
    assert by_set.candidates == by_bit.candidates
    assert by_set.pruned_candidates == by_bit.pruned_candidates
    if graph is not None:
        assert by_bit.matches == naive_match_set(graph, instance)


class TestEngineAgreement:
    @SETTINGS
    @given(
        graph=random_graphs(),
        template_index=st.integers(min_value=0, max_value=2),
        bound=st.integers(min_value=0, max_value=5),
        edge_bit=st.integers(min_value=0, max_value=1),
    )
    def test_match_and_candidates_identical(
        self, graph, template_index, bound, edge_bit
    ):
        instance = build_instance(TEMPLATES[template_index], bound, edge_bit)
        by_set = SubgraphMatcher(graph).match(instance)
        by_bit = SubgraphMatcher(graph, engine="bitset").match(instance)
        by_col = SubgraphMatcher(graph, engine="columnar").match(instance)
        assert_results_equal(by_set, by_bit, graph, instance)
        assert_results_equal(by_set, by_col)

    @SETTINGS
    @given(
        graph=random_graphs(),
        template_index=st.integers(min_value=0, max_value=2),
        bound=st.integers(min_value=0, max_value=5),
        edge_bit=st.integers(min_value=0, max_value=1),
    )
    def test_injective_engines_agree(self, graph, template_index, bound, edge_bit):
        instance = build_instance(TEMPLATES[template_index], bound, edge_bit)
        by_set = SubgraphMatcher(graph, injective=True).match(instance)
        by_bit = SubgraphMatcher(graph, injective=True, engine="bitset").match(instance)
        by_col = SubgraphMatcher(graph, injective=True, engine="columnar").match(
            instance
        )
        assert by_set.matches == by_bit.matches == by_col.matches
        assert by_set.candidates == by_bit.candidates == by_col.candidates
        assert by_bit.matches == naive_match_set(graph, instance, injective=True)

    @SETTINGS
    @given(
        graph=random_graphs(),
        template_index=st.integers(min_value=0, max_value=2),
        bound=st.integers(min_value=0, max_value=5),
        edge_bit=st.integers(min_value=0, max_value=1),
    )
    def test_exists_agrees(self, graph, template_index, bound, edge_bit):
        instance = build_instance(TEMPLATES[template_index], bound, edge_bit)
        by_set = SubgraphMatcher(graph).exists(instance)
        by_bit = SubgraphMatcher(graph, engine="bitset").exists(instance)
        by_col = SubgraphMatcher(graph, engine="columnar").exists(instance)
        assert by_set == by_bit == by_col == bool(naive_match_set(graph, instance))


class TestIncrementalParentSeeding:
    @SETTINGS
    @given(
        graph=random_graphs(),
        parent_bound=st.integers(min_value=0, max_value=3),
        child_extra=st.integers(min_value=0, max_value=2),
    )
    def test_mask_seeding_equals_set_seeding(self, graph, parent_bound, child_extra):
        """A child verified from a bitset parent (mask restriction) must
        equal the same child verified from a set parent (set restriction)
        and a from-scratch match."""
        template = path_template()
        parent = QueryInstance(Instantiation(template, {"xl": parent_bound}))
        child = QueryInstance(
            Instantiation(template, {"xl": parent_bound + child_extra})
        )

        set_matcher = SubgraphMatcher(graph)
        parent_set = set_matcher.match(parent)
        fresh = SubgraphMatcher(graph).match(child)
        seeded_set = set_matcher.match(child, restrict=parent_set.candidates)
        for engine in ("bitset", "columnar"):
            matcher = SubgraphMatcher(graph, engine=engine)
            parent_bit = matcher.match(parent)
            assert parent_bit.candidate_masks is not None
            seeded_bit = matcher.match(
                child, restrict_masks=parent_bit.candidate_masks
            )
            assert seeded_bit.matches == seeded_set.matches == fresh.matches
            assert seeded_bit.candidates == seeded_set.candidates

    @SETTINGS
    @given(graph=random_graphs(), parent_bound=st.integers(min_value=0, max_value=3))
    def test_incremental_verifier_engines_agree(self, graph, parent_bound):
        """IncrementalVerifier takes the mask-native path on bitset parents
        and the set path otherwise; both must produce the from-scratch
        match set for the child."""
        template = path_template()
        parent = QueryInstance(Instantiation(template, {"xl": parent_bound}))
        child = QueryInstance(Instantiation(template, {"xl": parent_bound + 1}))
        outcomes = {}
        for engine in ("set", "bitset", "columnar"):
            matcher = SubgraphMatcher(graph, engine=engine)
            verifier = IncrementalVerifier(matcher)
            verifier.verify(parent)
            result = verifier.verify(child, parent=parent)
            outcomes[engine] = result.matches
        assert outcomes["set"] == outcomes["bitset"] == outcomes["columnar"]
        assert outcomes["bitset"] == naive_match_set(graph, child)
