"""Property-based tests for dominance, boxes, fronts and the archive."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.kung import kung_front
from repro.core.pareto import (
    box_coordinate,
    box_of,
    dominates,
    epsilon_dominates,
    minimal_epsilon,
    pareto_front,
)
from repro.core.update import EpsilonParetoArchive


class Point:
    def __init__(self, delta, coverage):
        self.delta = delta
        self.coverage = coverage
        self.instance = (delta, coverage)

    def __repr__(self):
        return f"P({self.delta:.3f}, {self.coverage:.3f})"


# Objective values are either exactly zero or of non-negligible size: the
# strict box discretization clamps values below 1e-9 into one lowest box
# (documented in box_coordinate), so the multiplicative guarantee only
# holds above the clamp — which is where real δ/f values live (δ counts
# relevance sums, f is integer-valued).
coords = st.one_of(
    st.just(0.0), st.floats(min_value=1e-6, max_value=100.0, allow_nan=False)
)
points = st.builds(Point, coords, coords)
point_lists = st.lists(points, min_size=1, max_size=60)
epsilons = st.floats(min_value=0.01, max_value=2.0, allow_nan=False)


class TestDominanceLaws:
    @given(p=points)
    def test_irreflexive(self, p):
        assert not dominates(p, p)

    @given(a=points, b=points)
    def test_asymmetric(self, a, b):
        if dominates(a, b):
            assert not dominates(b, a)

    @given(a=points, b=points, c=points)
    def test_transitive(self, a, b, c):
        if dominates(a, b) and dominates(b, c):
            assert dominates(a, c)

    @given(a=points, b=points, eps=epsilons)
    def test_dominance_implies_epsilon_dominance(self, a, b, eps):
        if dominates(a, b):
            assert epsilon_dominates(a, b, eps)

    @given(a=points, b=points, eps=epsilons)
    def test_lemma4_epsilon_dominance_persists(self, a, b, eps):
        """Lemma 4: ε-dominance survives any ε' > ε."""
        if epsilon_dominates(a, b, eps):
            assert epsilon_dominates(a, b, eps * 2)
            assert epsilon_dominates(a, b, eps + 0.5)


class TestBoxProperties:
    @given(v=st.floats(min_value=1e-6, max_value=1e6), eps=epsilons)
    def test_same_box_values_within_factor(self, v, eps):
        b = box_coordinate(v, eps)
        lower = (1 + eps) ** b
        assert lower <= v * (1 + 1e-9)
        assert v <= lower * (1 + eps) * (1 + 1e-9)

    @given(a=points, b=points, eps=epsilons)
    def test_box_dominance_implies_epsilon_dominance(self, a, b, eps):
        """Strict mode: box ⪰ implies the paper's ε-dominance exactly."""
        if box_of(a, eps).dominates_or_equal(box_of(b, eps)):
            assert epsilon_dominates(a, b, eps * (1 + 1e-6) + 1e-9)

    @given(v=st.floats(min_value=0.0, max_value=1e6), eps=epsilons)
    def test_shifted_box_monotone_in_value(self, v, eps):
        assert box_coordinate(v, eps, shifted=True) <= box_coordinate(
            v + 1.0, eps, shifted=True
        )


class TestFrontProperties:
    @given(ps=point_lists)
    def test_front_is_subset_and_complete(self, ps):
        front = pareto_front(ps)
        front_set = {p.instance for p in front}
        for p in ps:
            if p.instance in front_set:
                assert not any(dominates(q, p) for q in ps)
            else:
                assert any(
                    q.delta >= p.delta and q.coverage >= p.coverage for q in front
                )

    @given(ps=point_lists)
    def test_sweep_equals_kung(self, ps):
        sweep = sorted(p.instance for p in pareto_front(ps))
        kung = sorted(p.instance for p in kung_front(ps))
        assert sweep == kung

    @given(ps=point_lists)
    def test_front_needs_zero_epsilon(self, ps):
        front = pareto_front(ps)
        assert minimal_epsilon(front, ps) <= 1e-9


class TestArchiveProperties:
    @settings(max_examples=60, deadline=None)
    @given(ps=point_lists, eps=epsilons)
    def test_archive_epsilon_dominates_all_offered(self, ps, eps):
        archive = EpsilonParetoArchive(eps)
        for p in ps:
            archive.offer(p)
        kept = archive.instances()
        assert kept
        tolerance = eps * (1 + 1e-6) + 1e-7
        for p in ps:
            assert any(epsilon_dominates(k, p, tolerance) for k in kept)

    @settings(max_examples=60, deadline=None)
    @given(ps=point_lists, eps=epsilons)
    def test_archive_boxes_antichain(self, ps, eps):
        archive = EpsilonParetoArchive(eps)
        for p in ps:
            archive.offer(p)
        boxes = list(archive.boxes())
        for i, a in enumerate(boxes):
            for b in boxes[i + 1 :]:
                assert not a.dominates(b) and not b.dominates(a)

    @settings(max_examples=60, deadline=None)
    @given(ps=point_lists, eps=epsilons)
    def test_archive_members_non_dominated_among_offered(self, ps, eps):
        archive = EpsilonParetoArchive(eps)
        for p in ps:
            archive.offer(p)
        for kept in archive.instances():
            assert not any(dominates(p, kept) for p in ps)

    @settings(max_examples=40, deadline=None)
    @given(ps=point_lists, eps=epsilons)
    def test_rebuild_preserves_guarantee(self, ps, eps):
        archive = EpsilonParetoArchive(eps)
        for p in ps:
            archive.offer(p)
        larger = eps * 2
        archive.rebuild(larger)
        kept = archive.instances()
        # After re-discretization under ε' > ε, the (1+ε')²-factor still
        # covers everything offered (rebuild may merge then drop reps).
        tolerance = (1 + larger) ** 2 - 1 + 1e-7
        for p in ps:
            assert any(epsilon_dominates(k, p, tolerance) for k in kept)
