"""Property-based tests for the diversity and coverage measures."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.measures import CoverageMeasure, DiversityMeasure
from repro.graph.attributed_graph import AttributedGraph
from repro.groups.groups import GroupSet, NodeGroup

SETTINGS = settings(max_examples=50, deadline=None)


@st.composite
def attributed_nodes(draw):
    """A graph of one label with mixed numeric/categorical/missing attrs."""
    n = draw(st.integers(min_value=1, max_value=12))
    graph = AttributedGraph("g")
    for i in range(n):
        attrs = {}
        if draw(st.booleans()):
            attrs["num"] = draw(st.integers(min_value=0, max_value=50))
        if draw(st.booleans()):
            attrs["cat"] = draw(st.sampled_from(["r", "g", "b"]))
        graph.add_node(i, "m", attrs)
    return graph.freeze()


class TestDiversityProperties:
    @SETTINGS
    @given(graph=attributed_nodes(), lam=st.floats(min_value=0.0, max_value=1.0))
    def test_exact_equals_decomposed(self, graph, lam):
        exact = DiversityMeasure(graph, "m", lam=lam, mode="exact")
        fast = DiversityMeasure(graph, "m", lam=lam, mode="decomposed")
        answer = set(graph.node_ids())
        assert abs(exact.of(answer) - fast.of(answer)) < 1e-9

    @SETTINGS
    @given(graph=attributed_nodes(), lam=st.floats(min_value=0.0, max_value=1.0))
    def test_bounds(self, graph, lam):
        measure = DiversityMeasure(graph, "m", lam=lam)
        answer = set(graph.node_ids())
        value = measure.of(answer)
        assert 0.0 <= value <= measure.upper_bound + 1e-9

    @SETTINGS
    @given(graph=attributed_nodes())
    def test_monotone_under_superset(self, graph):
        """Max-sum diversity only grows when the answer grows."""
        measure = DiversityMeasure(graph, "m", lam=0.5)
        nodes = sorted(graph.node_ids())
        for cut in range(1, len(nodes)):
            smaller = measure.of(nodes[:cut])
            larger = measure.of(nodes[: cut + 1])
            assert larger >= smaller - 1e-9


group_ids = st.sets(st.integers(min_value=0, max_value=30), min_size=1, max_size=10)


class TestCoverageProperties:
    @SETTINGS
    @given(
        a=group_ids,
        b=group_ids,
        answer=st.sets(st.integers(min_value=0, max_value=40), max_size=20),
    )
    def test_range_and_feasibility(self, a, b, answer):
        b = b - a  # Enforce disjointness.
        if not b:
            return
        groups = GroupSet(
            [
                NodeGroup("A", frozenset(a), min(1, len(a))),
                NodeGroup("B", frozenset(b), min(1, len(b))),
            ]
        )
        measure = CoverageMeasure(groups)
        value = measure.of(answer)
        assert 0.0 <= value <= measure.upper_bound
        if measure.is_feasible(answer):
            for group in groups:
                assert group.overlap(answer) >= group.coverage

    @SETTINGS
    @given(a=group_ids, b=group_ids)
    def test_exact_coverage_maximizes_f(self, a, b):
        b = b - a
        if not b:
            return
        groups = GroupSet(
            [
                NodeGroup("A", frozenset(a), min(1, len(a))),
                NodeGroup("B", frozenset(b), min(1, len(b))),
            ]
        )
        measure = CoverageMeasure(groups)
        exact = set(list(a)[: groups["A"].coverage]) | set(
            list(b)[: groups["B"].coverage]
        )
        assert measure.of(exact) == measure.upper_bound
