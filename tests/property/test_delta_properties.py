"""Property-based tests: incremental match maintenance ≡ full recompute.

Random graphs, random deltas (edge flips), a fixed two-hop query: after
every maintained update the maintainer's match set must equal a fresh full
verification on the updated graph.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graph.attributed_graph import AttributedGraph
from repro.matching.delta import GraphDelta, IncrementalMatchMaintainer, apply_delta
from repro.matching.matcher import SubgraphMatcher
from repro.query import Instantiation, Op, QueryInstance, QueryTemplate

SETTINGS = settings(max_examples=50, deadline=None)


def two_hop_template():
    return (
        QueryTemplate.builder("two-hop")
        .node("u0", "a")
        .node("u1", "a")
        .node("u2", "a")
        .fixed_edge("u1", "u0", "e")
        .fixed_edge("u2", "u1", "e")
        .range_var("xl", "u2", "x", Op.GE)
        .output("u0")
        .build()
    )


@st.composite
def graph_and_delta(draw):
    n = draw(st.integers(min_value=3, max_value=8))
    graph = AttributedGraph("g")
    for i in range(n):
        graph.add_node(i, "a", {"x": draw(st.integers(min_value=0, max_value=4))})
    possible = [(i, j, "e") for i in range(n) for j in range(n) if i != j]
    present = draw(
        st.lists(st.sampled_from(possible), max_size=14, unique=True)
    )
    for source, target, label in present:
        graph.add_edge(source, target, label)
    graph.freeze()

    absent = [key for key in possible if key not in set(present)]
    inserts = tuple(
        draw(st.lists(st.sampled_from(absent), max_size=3, unique=True))
        if absent
        else []
    )
    deletes = tuple(
        draw(st.lists(st.sampled_from(present), max_size=3, unique=True))
        if present
        else []
    )
    return graph, GraphDelta(insert_edges=inserts, delete_edges=deletes)


class TestDeltaMaintenance:
    @SETTINGS
    @given(setup=graph_and_delta(), bound=st.integers(min_value=0, max_value=4))
    def test_maintained_equals_full_recompute(self, setup, bound):
        graph, delta = setup
        instance = QueryInstance(Instantiation(two_hop_template(), {"xl": bound}))
        maintainer = IncrementalMatchMaintainer(graph, instance)
        new_graph = maintainer.apply(delta)
        expected = SubgraphMatcher(new_graph).match(instance).matches
        assert maintainer.matches == expected

    @SETTINGS
    @given(setup=graph_and_delta())
    def test_sequential_deltas(self, setup):
        graph, delta = setup
        instance = QueryInstance(Instantiation(two_hop_template(), {"xl": 0}))
        maintainer = IncrementalMatchMaintainer(graph, instance)
        # Apply, then invert the delta; the matches must return to the
        # original set (apply's validation guarantees both legs are legal).
        original = maintainer.matches
        maintainer.apply(delta)
        inverse = GraphDelta(
            insert_edges=delta.delete_edges, delete_edges=delta.insert_edges
        )
        maintainer.apply(inverse)
        assert maintainer.matches == original

    @SETTINGS
    @given(setup=graph_and_delta())
    def test_empty_delta_is_noop(self, setup):
        graph, _ = setup
        instance = QueryInstance(Instantiation(two_hop_template(), {"xl": 0}))
        maintainer = IncrementalMatchMaintainer(graph, instance)
        before = maintainer.matches
        returned = maintainer.apply(GraphDelta())
        assert returned is graph
        assert maintainer.matches == before
        assert maintainer.last_rechecked == 0
