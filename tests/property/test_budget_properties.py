"""Property tests of the truncation contract (``repro.runtime``).

For any configuration and any budget, a truncated run must return a
*valid partial result*: every returned instance was actually verified
(it appears, with identical objectives, in the unbudgeted run's verified
set) and the returned set is internally consistent as an ε-Pareto
archive — distinct boxes, no box dominance, no plain dominance between
members. Exhaustion must never raise and never corrupt the archive.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import BiQGen, EnumQGen, GenerationConfig, GroupSet, NodeGroup, RfQGen
from repro.core.evaluator import InstanceEvaluator
from repro.core.lattice import InstanceLattice
from repro.core.pareto import box_of, dominates
from repro.graph.attributed_graph import AttributedGraph
from repro.query import Literal, Op, QueryTemplate
from repro.runtime import Budget, CancellationToken, TickingClock

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

ALGORITHMS = [EnumQGen, RfQGen, BiQGen]


def fixed_template():
    """Recommendation template over the random graphs below."""
    return (
        QueryTemplate.builder("budget-prop")
        .node("u0", "person", Literal("kind", Op.EQ, "target"))
        .node("u1", "person")
        .fixed_edge("u1", "u0", "rec")
        .edge_var("xe", "u1", "u1x", "rec")
        .node("u1x", "person")
        .range_var("xl", "u1", "score", Op.GE)
        .output("u0")
        .build()
    )


@st.composite
def configurations(draw):
    n_targets = draw(st.integers(min_value=4, max_value=8))
    n_recommenders = draw(st.integers(min_value=2, max_value=4))
    graph = AttributedGraph("budget-prop")
    targets = []
    for i in range(n_targets):
        graph.add_node(
            i,
            "person",
            {
                "kind": "target",
                "score": draw(st.integers(min_value=0, max_value=5)),
                "group": draw(st.sampled_from(["a", "b"])),
            },
        )
        targets.append(i)
    recommenders = []
    for i in range(n_targets, n_targets + n_recommenders):
        graph.add_node(
            i,
            "person",
            {"kind": "rec", "score": draw(st.integers(min_value=0, max_value=5))},
        )
        recommenders.append(i)
    for r in recommenders:
        chosen = draw(
            st.sets(st.sampled_from(targets), min_size=1, max_size=n_targets)
        )
        for t in chosen:
            graph.add_edge(r, t, "rec")
        if draw(st.booleans()) and len(recommenders) > 1:
            other = draw(st.sampled_from([x for x in recommenders if x != r]))
            graph.add_edge(r, other, "rec")
    graph.freeze()

    group_a = frozenset(t for t in targets if graph.attribute(t, "group") == "a")
    group_b = frozenset(t for t in targets if graph.attribute(t, "group") == "b")
    if not group_a or not group_b:
        group_a, group_b = frozenset({targets[0]}), frozenset({targets[-1]})
    groups = GroupSet(
        [
            NodeGroup("a", group_a, min(1, len(group_a))),
            NodeGroup("b", group_b, min(1, len(group_b))),
        ]
    )
    epsilon = draw(st.sampled_from([0.05, 0.2, 0.5, 1.0]))
    return GenerationConfig(
        graph, fixed_template(), groups, epsilon=epsilon, max_domain_values=4
    )


def verified_universe(config):
    """Objectives of every instance in ``I(Q)``, keyed by instantiation."""
    evaluator = InstanceEvaluator(config)
    lattice = InstanceLattice(config)
    return {
        e.instance.instantiation.key: e.objectives
        for e in (evaluator.evaluate(i) for i in lattice.enumerate_instances())
    }


def assert_internally_consistent(result, epsilon):
    """The archive invariants: unique boxes, no box or plain dominance."""
    points = result.instances
    boxes = [box_of(p, epsilon) for p in points]
    assert len(set(boxes)) == len(boxes), "two archive members share a box"
    for i, a in enumerate(points):
        for j, b in enumerate(points):
            if i == j:
                continue
            assert not boxes[i].dominates(boxes[j]), "box dominance inside archive"
            assert not dominates(a, b), "plain dominance inside archive"


class TestTruncatedArchiveValidity:
    @SETTINGS
    @given(
        config=configurations(),
        algo_index=st.integers(min_value=0, max_value=len(ALGORITHMS) - 1),
        max_instances=st.integers(min_value=1, max_value=12),
    )
    def test_truncated_result_is_subset_of_verified_universe(
        self, config, algo_index, max_instances
    ):
        universe = verified_universe(config)
        algo_cls = ALGORITHMS[algo_index]
        result = algo_cls(
            config.with_budget(Budget(max_instances=max_instances))
        ).run()
        assert result.stats.verified <= max_instances
        for point in result.instances:
            key = point.instance.instantiation.key
            assert key in universe, "returned an instance outside I(Q)"
            assert point.objectives == universe[key], (
                "returned objectives disagree with a fresh verification"
            )
        assert_internally_consistent(result, result.epsilon)
        if result.truncated:
            assert result.stats.truncation_reason == "max_instances"
        else:
            # Budget generous enough: must match the unbudgeted run.
            baseline = algo_cls(config).run()
            assert sorted(p.objectives for p in result.instances) == sorted(
                p.objectives for p in baseline.instances
            )

    @SETTINGS
    @given(
        config=configurations(),
        tick=st.sampled_from([0.005, 0.02, 0.1]),
        deadline=st.sampled_from([0.05, 0.3, 1.0]),
    )
    def test_ticking_deadline_never_corrupts_archive(self, config, tick, deadline):
        budget = Budget(deadline_seconds=deadline, clock=TickingClock(tick=tick))
        result = EnumQGen(config.with_budget(budget)).run()
        universe = verified_universe(config)
        for point in result.instances:
            assert point.instance.instantiation.key in universe
        assert_internally_consistent(result, result.epsilon)

    @SETTINGS
    @given(config=configurations())
    def test_no_budget_means_no_truncation(self, config):
        result = EnumQGen(config).run()
        assert not result.truncated
        assert result.stats.truncation_reason is None

    @SETTINGS
    @given(config=configurations())
    def test_precancelled_run_returns_empty_valid_result(self, config):
        from dataclasses import replace

        token = CancellationToken()
        token.cancel()
        result = RfQGen(replace(config, cancellation=token)).run()
        assert result.truncated
        assert result.stats.truncation_reason == "cancelled"
        assert result.instances == []
        assert result.stats.verified == 0
