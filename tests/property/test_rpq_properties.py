"""Property-based tests: the RPQ NFA against Python's ``re`` engine.

Random patterns over a two-letter alphabet are compiled both by our
Thompson construction and by ``re`` (with ``/`` concatenation mapped to
juxtaposition); acceptance must agree on random words. A second battery
checks the engine on random graphs against a path-enumeration oracle.
"""

import itertools
import re as stdlib_re

from hypothesis import given, settings, strategies as st

from repro.graph.attributed_graph import AttributedGraph
from repro.rpq import evaluate_rpq, parse_regex

SETTINGS = settings(max_examples=80, deadline=None)


@st.composite
def patterns(draw, depth=0):
    """Random RPQ patterns over labels {a, b} (forward steps only, so the
    stdlib translation is exact)."""
    if depth >= 3:
        return draw(st.sampled_from(["a", "b"]))
    kind = draw(
        st.sampled_from(["label", "label", "concat", "union", "star", "plus", "opt"])
    )
    if kind == "label":
        return draw(st.sampled_from(["a", "b"]))
    if kind == "concat":
        left = draw(patterns(depth=depth + 1))
        right = draw(patterns(depth=depth + 1))
        return f"({left})/({right})"
    if kind == "union":
        left = draw(patterns(depth=depth + 1))
        right = draw(patterns(depth=depth + 1))
        return f"({left})|({right})"
    inner = draw(patterns(depth=depth + 1))
    suffix = {"star": "*", "plus": "+", "opt": "?"}[kind]
    return f"({inner}){suffix}"


def to_stdlib(pattern: str) -> str:
    """Translate the RPQ surface syntax into a stdlib regex."""
    return pattern.replace("/", "")


class TestAgainstStdlibRe:
    @SETTINGS
    @given(
        pattern=patterns(),
        word=st.text(alphabet="ab", max_size=6),
    )
    def test_acceptance_agrees(self, pattern, word):
        nfa = parse_regex(pattern)
        symbols = [(c, True) for c in word]
        expected = stdlib_re.fullmatch(to_stdlib(pattern), word) is not None
        assert nfa.accepts_word(symbols) == expected, (pattern, word)

    @SETTINGS
    @given(pattern=patterns())
    def test_empty_word_agrees(self, pattern):
        nfa = parse_regex(pattern)
        expected = stdlib_re.fullmatch(to_stdlib(pattern), "") is not None
        assert nfa.matches_empty() == expected


@st.composite
def labeled_graphs(draw):
    """Random graphs with ≤6 nodes and edges labeled a/b."""
    n = draw(st.integers(min_value=1, max_value=6))
    graph = AttributedGraph("g")
    for i in range(n):
        graph.add_node(i, "v", {})
    possible = [
        (i, j, label)
        for i in range(n)
        for j in range(n)
        if i != j
        for label in ("a", "b")
    ]
    if possible:
        for source, target, label in draw(
            st.lists(st.sampled_from(possible), max_size=12, unique=True)
        ):
            graph.add_edge(source, target, label)
    return graph.freeze()


def oracle_reachable(graph, sources, pattern, max_length=6):
    """Enumerate all label words of paths up to ``max_length`` and filter
    through the stdlib regex (exponential — tiny graphs only)."""
    regex = stdlib_re.compile(to_stdlib(pattern))
    reached = set()
    frontier = [(source, "") for source in sources]
    seen = set(frontier)
    while frontier:
        node, word = frontier.pop()
        if regex.fullmatch(word):
            reached.add(node)
        if len(word) >= max_length:
            continue
        for edge in graph.out_edges(node):
            state = (edge.target, word + edge.label)
            if state not in seen:
                seen.add(state)
                frontier.append(state)
    return frozenset(reached)


class TestEngineAgainstOracle:
    @settings(max_examples=40, deadline=None)
    @given(graph=labeled_graphs(), pattern=patterns())
    def test_reachability_agrees(self, graph, pattern):
        sources = [0] if graph.has_node(0) else []
        got = evaluate_rpq(graph, sources, parse_regex(pattern))
        expected = oracle_reachable(graph, sources, pattern)
        # The oracle is truncated at path length 6; on ≤6-node graphs with
        # deduplicated (node, word) states it still enumerates every simple
        # behaviour, but loops can produce longer accepting words the
        # oracle misses — so the engine may only find MORE, never less.
        assert expected <= got
        if "+" not in pattern and "*" not in pattern:
            # Star-free patterns accept bounded words: oracle is exact.
            assert expected == got
