"""Property tests: the disjoint GroupSystem IS the legacy GroupSet.

The generalization contract (docs/fairness.md, docs/theory.md): wrapping
the paper's disjoint groups in the general :class:`GroupSystem` with the
L1 aggregate must be **byte-identical** to the legacy :class:`GroupSet`
path — same coverage values with ``==`` (not approx), same feasibility,
same maintained-counter reductions, same delta-scoring states. Anything
less would shift archives and counter baselines underneath every legacy
config.

A second family checks the generalized aggregates' internal coherence on
*overlapping* systems: the maintained-counter reduction equals the
from-scratch error, and relax only ever widens feasibility.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.measures import (
    CoverageMeasure,
    DiversityMeasure,
    WeightedCoverageMeasure,
)
from repro.graph.attributed_graph import AttributedGraph
from repro.groups.groups import GroupSet
from repro.groups.system import GroupSystem, NodeGroup
from repro.obs.registry import MetricsRegistry
from repro.scoring import ScoreEngine, ScoreState

SETTINGS = settings(max_examples=40, deadline=None)

_UNIVERSE = 40


def _graph(n: int, seed: int) -> AttributedGraph:
    graph = AttributedGraph("prop-groups")
    for i in range(n):
        r = (i * 2654435761 + seed * 40503) & 0xFFFF
        attrs = {}
        if r % 5 != 0:
            attrs["num"] = (r >> 3) % 97
        if r % 4 != 1:
            attrs["cat"] = ("x", "y", "z", "w")[(r >> 7) % 4]
        graph.add_node(i, "m", attrs)
    return graph.freeze()


@st.composite
def disjoint_groups(draw, universe=_UNIVERSE):
    """2-4 disjoint groups (as NodeGroup tuples) over the node universe."""
    m = draw(st.integers(min_value=2, max_value=4))
    assignment = draw(
        st.lists(
            st.integers(min_value=0, max_value=m),  # m == "no group"
            min_size=universe,
            max_size=universe,
        )
    )
    members = [set() for _ in range(m)]
    # Nodes 0 and 1 anchor two groups so at least two are non-empty.
    members[0].add(0)
    members[1].add(1)
    for node, bucket in enumerate(assignment[2:], start=2):
        if bucket < m:
            members[bucket].add(node)
    groups = []
    for i, nodes in enumerate(members):
        if not nodes:
            continue
        coverage = draw(st.integers(min_value=0, max_value=len(nodes)))
        groups.append(NodeGroup(f"g{i}", frozenset(nodes), coverage))
    return groups


answers = st.sets(
    st.integers(min_value=0, max_value=_UNIVERSE - 1), max_size=_UNIVERSE
)


class TestDisjointEquivalence:
    @SETTINGS
    @given(groups=disjoint_groups(), answer=answers)
    def test_coverage_measure_byte_identical(self, groups, answer):
        legacy = CoverageMeasure(GroupSet(groups))
        general = CoverageMeasure(GroupSystem(groups, aggregate="l1"))
        assert legacy.of(answer) == general.of(answer)
        assert legacy.upper_bound == general.upper_bound
        assert legacy.is_feasible(answer) == general.is_feasible(answer)
        overlaps = legacy.overlaps(answer)
        assert overlaps == general.overlaps(answer)
        assert legacy.of_overlaps(overlaps) == general.of_overlaps(overlaps)
        assert legacy.feasible_overlaps(overlaps) == general.feasible_overlaps(
            overlaps
        )

    @SETTINGS
    @given(groups=disjoint_groups(), answer=answers)
    def test_weighted_measure_agrees_on_unit_weights(self, groups, answer):
        legacy = WeightedCoverageMeasure(GroupSet(groups), {})
        general = WeightedCoverageMeasure(GroupSystem(groups), {})
        assert legacy.of(answer) == general.of(answer)
        assert legacy.of_overlaps(legacy.overlaps(answer)) == general.of_overlaps(
            general.overlaps(answer)
        )

    @SETTINGS
    @given(groups=disjoint_groups(), answer=answers)
    def test_membership_index_is_the_disjoint_one(self, groups, answer):
        legacy = GroupSet(groups)
        general = GroupSystem(groups)
        assert general.is_disjoint
        assert general.max_memberships <= 1
        for node in range(_UNIVERSE):
            assert general.groups_of(node) == legacy.groups_of(node)
            expected = legacy.group_of(node)
            names = general.groups_of(node)
            assert (names[0] if names else None) == expected
        assert legacy.overlap_counts(answer) == general.overlap_counts(answer)


@st.composite
def delta_chain(draw):
    seed = draw(st.integers(min_value=0, max_value=1000))
    initial = draw(
        st.sets(
            st.integers(min_value=0, max_value=_UNIVERSE - 1),
            min_size=2,
            max_size=_UNIVERSE,
        )
    )
    steps = draw(
        st.lists(
            st.tuples(
                st.sets(
                    st.integers(min_value=0, max_value=_UNIVERSE - 1), max_size=5
                ),
                st.sets(
                    st.integers(min_value=0, max_value=_UNIVERSE - 1), max_size=3
                ),
            ),
            min_size=1,
            max_size=5,
        )
    )
    return seed, initial, steps


class TestScoringEquivalence:
    @SETTINGS
    @given(groups=disjoint_groups(), chain=delta_chain())
    def test_delta_engine_identical_under_both_containers(self, groups, chain):
        """One ScoreEngine per container: every chained score matches ==."""
        seed, answer, steps = chain
        graph = _graph(_UNIVERSE, seed)
        diversity = DiversityMeasure(graph, "m", lam=0.5)
        engines = [
            ScoreEngine(
                graph,
                diversity,
                CoverageMeasure(container),
                metrics=MetricsRegistry(),
                max_delta_fraction=1.0,
            )
            for container in (GroupSet(groups), GroupSystem(groups))
        ]
        parent = None
        for removed, added in [(set(), set())] + steps:
            answer = (answer - removed) | added
            scored = [e.score(frozenset(answer), parent) for e in engines]
            assert scored[0].delta == scored[1].delta
            assert scored[0].coverage == scored[1].coverage
            assert scored[0].feasible == scored[1].feasible
            parent = frozenset(answer)

    @SETTINGS
    @given(groups=disjoint_groups(), chain=delta_chain())
    def test_score_state_signatures_identical(self, groups, chain):
        seed, answer, steps = chain
        graph = _graph(_UNIVERSE, seed)
        attributes = ("cat", "num")
        legacy, general = GroupSet(groups), GroupSystem(groups)
        s_legacy = ScoreState.build(answer, graph, attributes, legacy)
        s_general = ScoreState.build(answer, graph, attributes, general)
        assert s_legacy.signature() == s_general.signature()
        for removed, added in steps:
            removed = frozenset(removed & answer)
            added = frozenset(added - (answer - removed))
            answer = (answer - removed) | added
            s_legacy = s_legacy.derive(removed, added, graph, legacy)
            s_general = s_general.derive(removed, added, graph, general)
            assert s_legacy.signature() == s_general.signature()


@st.composite
def overlapping_system(draw):
    """A genuinely unconstrained system: memberships drawn per (node, group)."""
    m = draw(st.integers(min_value=2, max_value=4))
    aggregate = draw(st.sampled_from(("l1", "max", "weighted")))
    groups = []
    for i in range(m):
        nodes = draw(
            st.sets(
                st.integers(min_value=0, max_value=_UNIVERSE - 1),
                min_size=1,
                max_size=_UNIVERSE,
            )
        )
        coverage = draw(st.integers(min_value=0, max_value=len(nodes)))
        relax = draw(st.integers(min_value=0, max_value=2))
        groups.append(NodeGroup(f"g{i}", frozenset(nodes), coverage, relax))
    weights = (
        {g.name: draw(st.floats(min_value=0.0, max_value=4.0)) for g in groups}
        if aggregate == "weighted"
        else None
    )
    return GroupSystem(groups, aggregate=aggregate, weights=weights)


class TestOverlappingCoherence:
    @SETTINGS
    @given(system=overlapping_system(), answer=answers)
    def test_counter_reduction_equals_from_scratch(self, system, answer):
        overlaps = system.overlaps(answer)
        assert system.overlap_counts(answer) == overlaps
        assert system.error_of_overlaps(overlaps) == system.coverage_error(answer)
        assert system.feasible_overlaps(overlaps) == system.is_feasible(answer)

    @SETTINGS
    @given(system=overlapping_system(), answer=answers)
    def test_relax_only_widens_feasibility(self, system, answer):
        strict = GroupSystem(
            [NodeGroup(g.name, g.members, g.coverage) for g in system],
            aggregate=system.aggregate,
            weights=system._weights,
        )
        if strict.is_feasible(answer):
            assert system.is_feasible(answer)

    @SETTINGS
    @given(system=overlapping_system(), answer=answers)
    def test_error_bounded_by_quality_bound_structure(self, system, answer):
        measure = CoverageMeasure(system)
        value = measure.of(answer)
        assert 0.0 <= value <= float(system.quality_bound)
        if system.coverage_error(answer) == 0:
            assert value == float(system.quality_bound)
