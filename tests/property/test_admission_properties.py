"""Property tests of the daemon's admission layer (``repro.service``).

Three families of invariants, each over adversarial random inputs:

* **DRR bounded lag** — for any arrival pattern of tenants and SLO
  classes, the deficit-round-robin scheduler serves every admitted
  request exactly once, preserves within-tenant FIFO order, and never
  lets one tenant serve more than a bounded amount of work between two
  consecutive serves of another *backlogged* tenant (no starvation).
* **SLO budget monotonicity** — the resolved budget is always the
  element-wise tighter of the explicit fields and the class caps, and a
  stricter class never yields a looser budget than a laxer one for the
  same request.
* **Dedup ledger soundness** — under any interleaving of routes and
  completions, every request gets exactly one fate (execute, replay or
  promotion), distinct signatures are never conflated, and a fully
  drained ledger holds no orphans.
"""

from __future__ import annotations

from types import SimpleNamespace

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.obs.registry import MetricsRegistry
from repro.query import Literal, Op, QueryTemplate
from repro.service.admission import (
    AdmissionController,
    DRR_QUANTUM,
    SLO_CLASSES,
    request_cost,
    resolve_budget,
)
from repro.service.daemon import DedupLedger
from repro.service.requests import GenerationRequest

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TEMPLATE = (
    QueryTemplate.builder("admission-prop")
    .node("u0", "person", Literal("kind", Op.EQ, "target"))
    .node("u1", "person")
    .fixed_edge("u1", "u0", "rec")
    .range_var("xl", "u1", "score", Op.GE)
    .output("u0")
    .build()
)

slo_names = st.sampled_from([None, *SLO_CLASSES])

arrivals = st.lists(
    st.tuples(st.sampled_from(["a", "b", "c", "d"]), slo_names),
    min_size=1,
    max_size=60,
)


def make_request(request_id, client, slo):
    return GenerationRequest(
        request_id, TEMPLATE, client=client, slo=slo
    )


def drain_order(controller):
    """Dequeue everything (ignoring shed verdicts), in served order."""
    order = []
    while True:
        item = controller.next()
        if item is None:
            return order
        order.append(item[0])


# ---------------------------------------------------------------------- #
# DRR fairness
# ---------------------------------------------------------------------- #


@SETTINGS
@given(arrivals)
def test_drr_serves_everything_once_in_tenant_fifo_order(pattern):
    controller = AdmissionController(MetricsRegistry(), queue_depth=len(pattern))
    for seq, (client, slo) in enumerate(pattern):
        assert controller.offer(seq, make_request(f"r{seq}", client, slo)) is None
    served = drain_order(controller)
    # Exactly once each.
    assert sorted(e.seq for e in served) == list(range(len(pattern)))
    # Within-tenant submission order is preserved.
    for client in {c for c, _ in pattern}:
        seqs = [e.seq for e in served if e.request.client == client]
        assert seqs == sorted(seqs)
    assert len(controller) == 0


@SETTINGS
@given(arrivals)
def test_drr_bounded_lag_between_serves_of_a_backlogged_tenant(pattern):
    """While a tenant is backlogged, any other tenant serves at most
    ``2 * DRR_QUANTUM - 1`` cost units before the backlogged tenant's
    next request — one carried remainder plus one fresh quantum."""
    controller = AdmissionController(MetricsRegistry(), queue_depth=len(pattern))
    remaining = {}
    for seq, (client, slo) in enumerate(pattern):
        controller.offer(seq, make_request(f"r{seq}", client, slo))
        remaining[client] = remaining.get(client, 0) + 1
    bound = 2 * DRR_QUANTUM - 1
    # served[(t, c)]: cost tenant c served since backlogged tenant t's
    # last serve. One DRR turn spends at most (quantum-1) carried deficit
    # plus one fresh quantum, and between t's turns every other tenant
    # gets exactly one turn — hence the 2*quantum - 1 per-pair bound.
    served = {}
    tenants = {c for c, _ in pattern}
    while True:
        item = controller.next()
        if item is None:
            break
        entry = item[0]
        client = entry.request.client
        cost = request_cost(entry.request)
        for waiter in tenants:
            if waiter != client and remaining.get(waiter, 0) > 0:
                burned = served.get((waiter, client), 0) + cost
                assert burned <= bound
                served[(waiter, client)] = burned
        for other in tenants:
            served[(client, other)] = 0
        remaining[client] -= 1


@SETTINGS
@given(arrivals, st.integers(min_value=1, max_value=8))
def test_queue_depth_bounds_every_tenant_independently(pattern, depth):
    controller = AdmissionController(MetricsRegistry(), queue_depth=depth)
    queued = {}
    for seq, (client, slo) in enumerate(pattern):
        verdict = controller.offer(seq, make_request(f"r{seq}", client, slo))
        if verdict is None:
            queued[client] = queued.get(client, 0) + 1
            assert queued[client] <= depth
        else:
            assert queued.get(client, 0) == depth
    assert len(controller) == sum(queued.values())


# ---------------------------------------------------------------------- #
# SLO budget monotonicity
# ---------------------------------------------------------------------- #

optional_float = st.one_of(st.none(), st.floats(min_value=0.001, max_value=100))
optional_int = st.one_of(st.none(), st.integers(min_value=1, max_value=10**6))


def tighter_or_equal(a, b):
    """a ≤ b with None = unbounded."""
    if b is None:
        return True
    return a is not None and a <= b


@SETTINGS
@given(slo_names, optional_float, optional_int, optional_int)
def test_resolved_budget_is_the_elementwise_tighter_bound(
    slo, deadline, instances, backtracks
):
    request = GenerationRequest(
        "r", TEMPLATE, slo=slo, deadline_seconds=deadline,
        max_instances=instances, max_backtracks=backtracks,
    )
    budget = resolve_budget(request)
    caps = SLO_CLASSES[slo].caps() if slo else (None, None, None)
    explicit = (deadline, instances, backtracks)
    expected = tuple(
        min((v for v in pair if v is not None), default=None)
        for pair in zip(explicit, caps)
    )
    resolved = (
        (budget.deadline_seconds, budget.max_instances, budget.max_backtracks)
        if budget is not None
        else (None, None, None)
    )
    assert resolved == expected
    # Declaring a class can only shrink, never widen.
    for got, exp in zip(resolved, explicit):
        assert tighter_or_equal(got, exp)


@SETTINGS
@given(optional_float, optional_int, optional_int)
def test_stricter_class_never_yields_a_looser_budget(deadline, instances, backtracks):
    ladder = sorted(SLO_CLASSES.values(), key=lambda c: c.rank)
    budgets = []
    for cls in ladder:
        request = GenerationRequest(
            "r", TEMPLATE, slo=cls.name, deadline_seconds=deadline,
            max_instances=instances, max_backtracks=backtracks,
        )
        budget = resolve_budget(request)
        budgets.append(
            (budget.deadline_seconds, budget.max_instances, budget.max_backtracks)
            if budget is not None
            else (None, None, None)
        )
    for strict, lax in zip(budgets, budgets[1:]):
        for s, l in zip(strict, lax):
            assert tighter_or_equal(s, l)


# ---------------------------------------------------------------------- #
# Dedup ledger soundness
# ---------------------------------------------------------------------- #

ledger_scripts = st.lists(
    st.tuples(
        st.sampled_from(["route", "complete"]),
        st.integers(min_value=0, max_value=4),  # signature index
        st.booleans(),  # completion succeeds?
    ),
    min_size=1,
    max_size=80,
)


@SETTINGS
@given(ledger_scripts)
def test_ledger_gives_every_request_exactly_one_fate(script):
    ledger = DedupLedger()
    fates = {}  # seq -> "execute" | "replay"
    executing = {}  # signature -> seq currently executing
    seq_signature = {}
    next_seq = 0
    for op, sig_index, ok in script:
        signature = f"sig-{sig_index}"
        if op == "route":
            seq = next_seq
            next_seq += 1
            seq_signature[seq] = signature
            verdict = ledger.route(signature, seq)
            if verdict == DedupLedger.EXECUTE:
                assert signature not in executing
                fates[seq] = "execute"
                executing[signature] = seq
            elif verdict == DedupLedger.WAIT:
                assert signature in executing
            else:  # a completed outcome replayed immediately
                assert verdict.ok
                fates[seq] = "replay"
        elif signature in executing:
            outcome = SimpleNamespace(ok=ok)
            replay, promoted = ledger.complete(signature, outcome)
            del executing[signature]
            for waiter in replay:
                assert ok  # replays only happen on success
                assert seq_signature[waiter] == signature
                assert waiter not in fates
                fates[waiter] = "replay"
            if promoted is not None:
                assert not ok  # promotion only happens on failure
                assert seq_signature[promoted] == signature
                assert promoted not in fates
                fates[promoted] = "execute"
                executing[signature] = promoted
    # Drain: complete every in-flight signature successfully.
    while executing:
        signature, _ = next(iter(executing.items()))
        replay, promoted = ledger.complete(signature, SimpleNamespace(ok=True))
        del executing[signature]
        assert promoted is None
        for waiter in replay:
            assert seq_signature[waiter] == signature
            assert waiter not in fates
            fates[waiter] = "replay"
    assert ledger.orphans == []
    assert sorted(fates) == list(range(next_seq))
