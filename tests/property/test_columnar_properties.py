"""Property tests for the columnar core.

Two contracts, each pinned by construction against its dict-based twin:

* **Compiled masks** — for every operator and dtype mix (numeric,
  categorical, missing values, cross-type columns), the one-shot
  compiled-column mask equals both a direct per-node evaluation under the
  typed sort-key order and :meth:`AttributeIndex.matching_nodes`.
* **CSR repair** — after an arbitrary sequence of in-place
  :class:`GraphDelta` applications (edge inserts/deletes, attribute
  updates with removals), every patched CSR row, undirected row, column
  cell and compiled mask equals the one a freshly built store computes on
  the mutated graph.
"""

from bisect import bisect_left, bisect_right

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graph.attributed_graph import AttributedGraph, _sort_key
from repro.graph.columnar import ColumnarStore, CompiledColumn
from repro.graph.indexes import GraphIndexes
from repro.matching.delta import GraphDelta
from repro.query.predicates import Literal, Op
from repro.streaming.graph_ops import apply_delta_in_place

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

OPS = (Op.EQ, Op.GE, Op.GT, Op.LE, Op.LT)

numeric_values = st.one_of(
    st.integers(min_value=-5, max_value=5),
    st.floats(min_value=-5, max_value=5, allow_nan=False, width=32),
    st.booleans(),
)
categorical_values = st.sampled_from(["red", "green", "blue", "", "zz"])
any_value = st.one_of(numeric_values, categorical_values)


def reference_mask(values, op, constant):
    """Per-node evaluation under the typed total order (the table's order)."""
    pivot = _sort_key(constant)
    mask = 0
    for position, value in enumerate(values):
        if value is None:
            continue
        key = _sort_key(value)
        if (
            (op is Op.EQ and key == pivot)
            or (op is Op.GE and key >= pivot)
            or (op is Op.GT and key > pivot)
            or (op is Op.LE and key <= pivot)
            or (op is Op.LT and key < pivot)
        ):
            mask |= 1 << position
    return mask


class TestCompiledMasks:
    @SETTINGS
    @given(
        values=st.lists(st.one_of(st.none(), any_value), min_size=0, max_size=12),
        op=st.sampled_from(OPS),
        constant=any_value,
    )
    def test_mask_equals_per_node_evaluation(self, values, op, constant):
        compiled = CompiledColumn(values)
        assert compiled.mask_for(op, constant) == reference_mask(values, op, constant)

    @SETTINGS
    @given(
        values=st.lists(st.one_of(st.none(), any_value), min_size=1, max_size=10),
        op=st.sampled_from(OPS),
        constant=any_value,
    )
    def test_mask_equals_attribute_index(self, values, op, constant):
        graph = AttributedGraph("col")
        for i, value in enumerate(values):
            graph.add_node(i, "n", {} if value is None else {"v": value})
        graph.freeze()
        indexes = GraphIndexes(graph)
        store = indexes.enable_columnar()
        expected = indexes.bitsets.mask_of(
            "n", indexes.attributes.matching_nodes("n", "v", op, constant)
        )
        assert store.literal_mask("n", Literal("v", op, constant)) == expected

    @SETTINGS
    @given(
        values=st.lists(
            st.one_of(st.none(), st.integers(min_value=-5, max_value=5)),
            min_size=0,
            max_size=12,
        ),
        op=st.sampled_from(OPS),
        constant=st.integers(min_value=-6, max_value=6),
    )
    def test_homogeneous_numeric_matches_holds_for(self, values, op, constant):
        """On single-dtype columns the typed order is the plain value order,
        so compiled masks also agree with ``Literal.holds_for``."""
        literal = Literal("v", op, constant)
        compiled = CompiledColumn(values)
        expected = 0
        for position, value in enumerate(values):
            if value is not None and literal.holds_for(value):
                expected |= 1 << position
        assert compiled.mask_for(op, constant) == expected

    @SETTINGS
    @given(values=st.lists(st.one_of(st.none(), any_value), max_size=12))
    def test_suffix_structure(self, values):
        """Value masks are disjoint; their union is the present mask."""
        compiled = CompiledColumn(values)
        union = 0
        for mask in compiled.masks:
            assert union & mask == 0
            union |= mask
        assert union == compiled.present_mask
        assert compiled.keys == sorted(compiled.keys)


@st.composite
def graph_and_deltas(draw):
    """A random frozen graph plus a sequence of applicable deltas."""
    n = draw(st.integers(min_value=2, max_value=8))
    graph = AttributedGraph("stream")
    for i in range(n):
        attrs = {}
        value = draw(st.one_of(st.none(), any_value))
        if value is not None:
            attrs["v"] = value
        graph.add_node(i, draw(st.sampled_from(["a", "b"])), attrs)
    possible = [
        (i, j, label)
        for i in range(n)
        for j in range(n)
        if i != j
        for label in ("e", "f")
    ]
    for key in draw(
        st.lists(st.sampled_from(possible), max_size=12, unique=True)
    ):
        graph.add_edge(*key)
    graph.freeze()

    num_deltas = draw(st.integers(min_value=1, max_value=4))
    plans = []
    for _ in range(num_deltas):
        inserts = draw(
            st.lists(st.sampled_from(possible), max_size=3, unique=True)
        )
        delete_count = draw(st.integers(min_value=0, max_value=2))
        attrs = draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.just("v"),
                    st.one_of(st.none(), any_value),
                ),
                max_size=3,
            )
        )
        plans.append((inserts, delete_count, attrs))
    return graph, plans


class TestCSRRepair:
    @SETTINGS
    @given(data=graph_and_deltas(), seed=st.integers(min_value=0, max_value=999))
    def test_patched_store_equals_fresh_store(self, data, seed):
        graph, plans = data
        indexes = GraphIndexes(graph)
        store = indexes.enable_columnar()
        store.warm()
        for label in graph.node_labels():
            store.literal_mask(label, Literal("v", Op.GE, 0))

        for inserts, delete_count, attrs in plans:
            # Deletions must name existing edges: sample deterministically
            # from the current edge set.
            current = sorted(edge.key for edge in graph.edges())
            deletes = []
            for k in range(delete_count):
                if not current:
                    break
                deletes.append(current.pop((seed + k) % len(current)))
            delta = GraphDelta(
                insert_edges=tuple(
                    key for key in inserts if key not in set(deletes)
                ),
                delete_edges=tuple(deletes),
                set_attributes=tuple(attrs),
            )
            apply_delta_in_place(graph, delta)

        fresh = ColumnarStore(graph)
        for edge_label in graph.edge_labels():
            for outgoing in (True, False):
                patched = store.csr(edge_label, outgoing)
                rebuilt = fresh.csr(edge_label, outgoing)
                for gpos in range(len(store.node_order)):
                    assert list(map(int, patched.row(gpos))) == list(
                        map(int, rebuilt.row(gpos))
                    )
        for node_id in graph._nodes:
            row = store.und_csr().row(store.node_pos[node_id])
            assert {store.node_order[int(g)] for g in row} == graph.neighbors(
                node_id
            )
        for label in graph.node_labels():
            patched_col = store.column(label, "v")
            rebuilt_col = fresh.column(label, "v")
            assert patched_col.values == rebuilt_col.values
            for op in OPS:
                for constant in (-1, 0, 2, "red", "zz"):
                    assert patched_col.compiled().mask_for(
                        op, constant
                    ) == rebuilt_col.compiled().mask_for(op, constant)

    @SETTINGS
    @given(data=graph_and_deltas())
    def test_adjacency_masks_track_bitset_rows(self, data):
        """After repair, store adjacency masks equal freshly computed
        bitset rows (the matcher-facing contract)."""
        graph, plans = data
        indexes = GraphIndexes(graph)
        store = indexes.enable_columnar()
        store.warm()
        for inserts, _, attrs in plans:
            delta = GraphDelta(
                insert_edges=tuple(inserts), set_attributes=tuple(attrs)
            )
            apply_delta_in_place(graph, delta)
        fresh_bitsets = GraphIndexes(graph).bitsets
        for node_id in graph._nodes:
            for edge_label in ("e", "f"):
                for outgoing in (True, False):
                    for neighbor_label in ("a", "b"):
                        assert store.adjacency_mask(
                            node_id, edge_label, outgoing, neighbor_label
                        ) == fresh_bitsets.adjacency_row(
                            node_id, edge_label, outgoing, neighbor_label
                        )
