"""Property-based tests: refinement preorder laws and Lemma 2 monotonicity."""

from hypothesis import HealthCheck, given, settings, strategies as st

# The session-scoped graph/template fixtures are immutable, and each test
# builds its own evaluator, so sharing them across generated examples is
# safe — suppress the function-scoped-fixture health check.
SHARED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

from repro.core.evaluator import InstanceEvaluator
from repro.query import Instantiation, QueryInstance
from repro.query.refinement import compare_instantiations, refines, strictly_refines

# The toy talent template has xl1 ∈ yearsOfExp (GE), xl2 ∈ employees (GE),
# xe1 ∈ {0, 1}. Draw bindings from the graph's actual active domains plus
# values between/around them.
XL1 = st.sampled_from([5, 9, 12, 15, 18, 20])
XL2 = st.sampled_from([100, 500, 1000])
XE1 = st.sampled_from([0, 1])


def bindings():
    return st.tuples(XL1, XL2, XE1)


def make(template, triple):
    xl1, xl2, xe1 = triple
    return Instantiation(template, {"xl1": xl1, "xl2": xl2, "xe1": xe1})


class TestPreorderLaws:
    @given(a=bindings())
    def test_reflexive(self, talent_template, a):
        inst = make(talent_template, a)
        assert refines(inst, inst)

    @given(a=bindings(), b=bindings(), c=bindings())
    def test_transitive(self, talent_template, a, b, c):
        ia, ib, ic = (make(talent_template, t) for t in (a, b, c))
        if refines(ia, ib) and refines(ib, ic):
            assert refines(ia, ic)

    @given(a=bindings(), b=bindings())
    def test_antisymmetry_on_total_bindings(self, talent_template, a, b):
        ia, ib = make(talent_template, a), make(talent_template, b)
        if refines(ia, ib) and refines(ib, ia):
            assert ia.key == ib.key

    @given(a=bindings(), b=bindings())
    def test_compare_consistency(self, talent_template, a, b):
        ia, ib = make(talent_template, a), make(talent_template, b)
        cmp = compare_instantiations(ia, ib)
        if cmp == 1:
            assert strictly_refines(ia, ib)
        elif cmp == -1:
            assert strictly_refines(ib, ia)


class TestLemma2Monotonicity:
    """Refinement shrinks match sets; δ is antitone, f monotone on feasible."""

    @SHARED
    @given(a=bindings(), b=bindings())
    def test_match_set_containment(self, talent_config, talent_template, a, b):
        evaluator = InstanceEvaluator(talent_config)
        ia, ib = make(talent_template, a), make(talent_template, b)
        if not refines(ia, ib):
            return
        refined = evaluator.evaluate(QueryInstance(ia))
        relaxed = evaluator.evaluate(QueryInstance(ib))
        assert refined.matches <= relaxed.matches

    @SHARED
    @given(a=bindings(), b=bindings())
    def test_diversity_antitone(self, talent_config, talent_template, a, b):
        evaluator = InstanceEvaluator(talent_config)
        ia, ib = make(talent_template, a), make(talent_template, b)
        if not refines(ia, ib):
            return
        refined = evaluator.evaluate(QueryInstance(ia))
        relaxed = evaluator.evaluate(QueryInstance(ib))
        assert refined.delta <= relaxed.delta + 1e-9

    @SHARED
    @given(a=bindings(), b=bindings())
    def test_coverage_monotone_on_feasible(self, talent_config, talent_template, a, b):
        evaluator = InstanceEvaluator(talent_config)
        ia, ib = make(talent_template, a), make(talent_template, b)
        if not refines(ia, ib):
            return
        refined = evaluator.evaluate(QueryInstance(ia))
        relaxed = evaluator.evaluate(QueryInstance(ib))
        if refined.feasible and relaxed.feasible:
            assert refined.coverage >= relaxed.coverage - 1e-9

    @SHARED
    @given(a=bindings(), b=bindings())
    def test_infeasibility_propagates_to_refinements(
        self, talent_config, talent_template, a, b
    ):
        evaluator = InstanceEvaluator(talent_config)
        ia, ib = make(talent_template, a), make(talent_template, b)
        if not refines(ia, ib):
            return
        refined = evaluator.evaluate(QueryInstance(ia))
        relaxed = evaluator.evaluate(QueryInstance(ib))
        if not relaxed.feasible:
            assert not refined.feasible
