"""Property-based tests for workload generation components."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.datasets.lki import LKI_SCHEMA
from repro.query.serialization import template_from_dict, template_to_dict
from repro.workload import TemplateGenerator, TemplateSpec

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def specs(draw):
    size = draw(st.integers(min_value=1, max_value=5))
    num_edge_vars = draw(st.integers(min_value=0, max_value=size))
    num_range_vars = draw(st.integers(min_value=0, max_value=3))
    return TemplateSpec(
        "person",
        size=size,
        num_range_vars=num_range_vars,
        num_edge_vars=num_edge_vars,
    )


class TestTemplateGeneratorProperties:
    @SETTINGS
    @given(spec=specs(), seed=st.integers(min_value=0, max_value=10_000))
    def test_spec_always_respected(self, spec, seed):
        generator = TemplateGenerator(LKI_SCHEMA, seed=seed)
        template = generator.generate(spec)
        assert template.size == spec.size
        assert template.num_range_variables == spec.num_range_vars
        assert template.num_edge_variables == spec.num_edge_vars
        assert template.node(template.output_node).label == "person"

    @SETTINGS
    @given(spec=specs(), seed=st.integers(min_value=0, max_value=10_000))
    def test_templates_schema_valid(self, spec, seed):
        generator = TemplateGenerator(LKI_SCHEMA, seed=seed)
        template = generator.generate(spec)
        allowed = {
            (e.source_label, e.label, e.target_label) for e in LKI_SCHEMA.edges
        }
        for source, target, label in template.all_edge_keys():
            triple = (
                template.node(source).label,
                label,
                template.node(target).label,
            )
            assert triple in allowed

    @SETTINGS
    @given(spec=specs(), seed=st.integers(min_value=0, max_value=10_000))
    def test_serialization_roundtrip(self, spec, seed):
        """Every generated template survives the JSON dict round-trip."""
        generator = TemplateGenerator(LKI_SCHEMA, seed=seed)
        template = generator.generate(spec)
        data = template_to_dict(template)
        rebuilt = template_from_dict(data)
        assert template_to_dict(rebuilt) == data

    @SETTINGS
    @given(spec=specs(), seed=st.integers(min_value=0, max_value=10_000))
    def test_dsl_roundtrip(self, spec, seed):
        """Every generated template survives the textual DSL round-trip."""
        from repro.query.parser import format_template, parse_template

        generator = TemplateGenerator(LKI_SCHEMA, seed=seed)
        template = generator.generate(spec)
        again = parse_template(format_template(template))
        assert template_to_dict(again) == template_to_dict(template)
