"""Tests for the Theorem-1 NP-hardness gadget (k-clique reduction)."""

import itertools
import random

import pytest

from repro.core.hardness import encode_clique_instance, has_k_clique
from repro.errors import ConfigurationError


def triangle_plus_tail():
    vertices = [0, 1, 2, 3]
    edges = [(0, 1), (1, 2), (2, 0), (2, 3)]
    return vertices, edges


class TestGadgetConstruction:
    def test_graph_shape(self):
        vertices, edges = triangle_plus_tail()
        config = encode_clique_instance(vertices, edges, 3)
        assert config.graph.num_nodes == 4
        # Each undirected edge becomes two directed ones.
        assert config.graph.num_edges == 8
        assert config.injective is True

    def test_template_is_clique_pattern(self):
        vertices, edges = triangle_plus_tail()
        config = encode_clique_instance(vertices, edges, 4)
        assert len(config.template.nodes) == 4
        assert config.template.size == 6  # C(4, 2).
        assert config.template.num_variables == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            encode_clique_instance([0], [], 1)
        with pytest.raises(ConfigurationError):
            encode_clique_instance([], [], 3)


class TestDecision:
    def test_triangle_found(self):
        vertices, edges = triangle_plus_tail()
        assert has_k_clique(vertices, edges, 3)

    def test_no_four_clique(self):
        vertices, edges = triangle_plus_tail()
        assert not has_k_clique(vertices, edges, 4)

    def test_k2_is_any_edge(self):
        assert has_k_clique([0, 1], [(0, 1)], 2)
        assert not has_k_clique([0, 1], [], 2)

    def test_complete_graph_has_all_cliques(self):
        vertices = list(range(5))
        edges = list(itertools.combinations(vertices, 2))
        for k in range(2, 6):
            assert has_k_clique(vertices, edges, k)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_matches_networkx_on_random_graphs(self, seed):
        import networkx as nx

        rng = random.Random(seed)
        n = 8
        vertices = list(range(n))
        edges = [
            (u, v)
            for u, v in itertools.combinations(vertices, 2)
            if rng.random() < 0.45
        ]
        reference = nx.Graph(edges)
        reference.add_nodes_from(vertices)
        clique_number = max(
            (len(c) for c in nx.find_cliques(reference)), default=1
        )
        for k in (2, 3, 4):
            assert has_k_clique(vertices, edges, k) == (clique_number >= k), (
                seed,
                k,
                clique_number,
            )
