"""Unit tests for d-hop neighborhoods and induced subgraphs."""

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.sampling import (
    NeighborhoodView,
    d_hop_neighborhood,
    induced_subgraph,
    neighborhood_view,
)


@pytest.fixture(scope="module")
def path_graph():
    # 0 -> 1 -> 2 -> 3 -> 4 (labels alternate a/b).
    b = GraphBuilder()
    for i in range(5):
        b.node("a" if i % 2 == 0 else "b", pos=i)
    for i in range(4):
        b.edge(i, i + 1, "next")
    return b.build()


class TestDHop:
    def test_zero_hops_is_seeds(self, path_graph):
        assert d_hop_neighborhood(path_graph, [2], 0) == {2}

    def test_one_hop_is_undirected(self, path_graph):
        assert d_hop_neighborhood(path_graph, [2], 1) == {1, 2, 3}

    def test_multiple_seeds(self, path_graph):
        assert d_hop_neighborhood(path_graph, [0, 4], 1) == {0, 1, 3, 4}

    def test_saturation(self, path_graph):
        assert d_hop_neighborhood(path_graph, [2], 10) == {0, 1, 2, 3, 4}


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self, path_graph):
        sub = induced_subgraph(path_graph, [1, 2, 3])
        assert sub.num_nodes == 3
        assert sub.num_edges == 2
        assert sub.has_edge(1, 2, "next") and sub.has_edge(2, 3, "next")

    def test_preserves_attributes(self, path_graph):
        sub = induced_subgraph(path_graph, [0])
        assert sub.attribute(0, "pos") == 0

    def test_result_frozen(self, path_graph):
        sub = induced_subgraph(path_graph, [0])
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            sub.add_node(99, "x")


class TestNeighborhoodView:
    def test_membership(self, path_graph):
        view = neighborhood_view(path_graph, [2], 1)
        assert 1 in view and 2 in view and 0 not in view
        assert len(view) == 3

    def test_attribute_values_scoped(self, path_graph):
        view = neighborhood_view(path_graph, [2], 1)
        # Nodes 1 (b) and 3 (b) are in the ball; their pos values show up.
        assert view.attribute_values("b", "pos") == {1, 3}
        assert view.attribute_values("a", "pos") == {2}

    def test_has_labeled_edge(self, path_graph):
        view = neighborhood_view(path_graph, [2], 1)
        assert view.has_labeled_edge("next")  # 1->2 and 2->3 are internal.
        tiny = neighborhood_view(path_graph, [0], 0)
        assert not tiny.has_labeled_edge("next")
