"""Unit tests for template generation and instance streams."""

import pytest

from repro.datasets.dbp import DBP_SCHEMA, build_dbp
from repro.datasets.lki import LKI_SCHEMA
from repro.errors import ConfigurationError
from repro.graph.active_domain import ActiveDomainIndex
from repro.query.variables import WILDCARD
from repro.workload import (
    TemplateGenerator,
    TemplateSpec,
    random_instance_stream,
    shuffled_space_stream,
)


class TestTemplateSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TemplateSpec("movie", size=0)
        with pytest.raises(ConfigurationError):
            TemplateSpec("movie", size=2, num_edge_vars=3)
        with pytest.raises(ConfigurationError):
            TemplateSpec("movie", num_range_vars=-1)


class TestTemplateGenerator:
    @pytest.mark.parametrize("size,xl,xe", [(2, 1, 1), (3, 2, 1), (4, 3, 2), (5, 2, 3)])
    def test_spec_respected(self, size, xl, xe):
        gen = TemplateGenerator(DBP_SCHEMA, seed=3)
        template = gen.generate(TemplateSpec("movie", size, xl, xe))
        assert template.size == size
        assert template.num_range_variables == xl
        assert template.num_edge_variables == xe
        assert template.node(template.output_node).label == "movie"

    def test_deterministic_given_seed(self):
        a = TemplateGenerator(LKI_SCHEMA, seed=5).generate(TemplateSpec("person", 3, 2, 1))
        b = TemplateGenerator(LKI_SCHEMA, seed=5).generate(TemplateSpec("person", 3, 2, 1))
        assert a.variable_names() == b.variable_names()
        assert a.all_edge_keys() == b.all_edge_keys()

    def test_schema_validity(self):
        gen = TemplateGenerator(DBP_SCHEMA, seed=11)
        template = gen.generate(TemplateSpec("movie", 4, 2, 1))
        specs = {
            (e.source_label, e.label, e.target_label) for e in DBP_SCHEMA.edges
        }
        for source, target, label in template.all_edge_keys():
            triple = (
                template.node(source).label,
                label,
                template.node(target).label,
            )
            assert triple in specs

    def test_unreachable_label_fails(self):
        gen = TemplateGenerator(DBP_SCHEMA, seed=0)
        with pytest.raises(ConfigurationError):
            gen.generate(TemplateSpec("ghost", 2, 1, 0))

    def test_generate_many(self):
        gen = TemplateGenerator(LKI_SCHEMA, seed=1)
        batch = gen.generate_many(TemplateSpec("person", 3, 1, 1), 4)
        assert len(batch) == 4
        assert len({t.name for t in batch}) == 4


class TestStreams:
    @pytest.fixture(scope="class")
    def setup(self):
        graph = build_dbp(scale=0.05)
        gen = TemplateGenerator(DBP_SCHEMA, seed=2)
        template = gen.generate(TemplateSpec("movie", 3, 2, 1))
        domains = ActiveDomainIndex(graph, template, max_values=4)
        return template, domains

    def test_random_stream_count_and_totality(self, setup):
        template, domains = setup
        instances = list(random_instance_stream(template, domains, 25, seed=1))
        assert len(instances) == 25
        for instance in instances:
            for name, value in instance.instantiation.items():
                assert value != WILDCARD

    def test_random_stream_deterministic(self, setup):
        template, domains = setup
        a = [i.instantiation.key for i in random_instance_stream(template, domains, 10, seed=7)]
        b = [i.instantiation.key for i in random_instance_stream(template, domains, 10, seed=7)]
        assert a == b

    def test_shuffled_stream_covers_space(self, setup):
        template, domains = setup
        instances = list(shuffled_space_stream(template, domains, seed=0))
        keys = {i.instantiation.key for i in instances}
        assert len(keys) == len(instances) == domains.instance_space_size()

    def test_shuffled_stream_limit(self, setup):
        template, domains = setup
        limited = list(shuffled_space_stream(template, domains, seed=0, limit=5))
        assert len(limited) == 5

    def test_shuffled_stream_seed_changes_order(self, setup):
        template, domains = setup
        a = [i.instantiation.key for i in shuffled_space_stream(template, domains, seed=1)]
        b = [i.instantiation.key for i in shuffled_space_stream(template, domains, seed=2)]
        assert a != b
        assert sorted(a) == sorted(b)


class TestDriftingStream:
    @pytest.fixture(scope="class")
    def setup(self):
        from repro.datasets.dbp import DBP_SCHEMA, build_dbp

        graph = build_dbp(scale=0.05)
        gen = TemplateGenerator(DBP_SCHEMA, seed=2)
        template = gen.generate(TemplateSpec("movie", 3, 2, 1))
        domains = ActiveDomainIndex(graph, template, max_values=6)
        return template, domains

    def test_count_and_totality(self, setup):
        from repro.workload import drifting_instance_stream

        template, domains = setup
        instances = list(drifting_instance_stream(template, domains, 30, seed=1))
        assert len(instances) == 30
        for instance in instances:
            for value in instance.instantiation.values():
                assert value != WILDCARD

    def test_drift_moves_toward_refined(self, setup):
        from repro.workload import drifting_instance_stream

        template, domains = setup
        instances = list(drifting_instance_stream(template, domains, 60, seed=2))
        name = next(iter(template.range_variables))
        values = list(domains.domain(name))
        early = [values.index(i.instantiation[name]) for i in instances[:15]]
        late = [values.index(i.instantiation[name]) for i in instances[-15:]]
        assert sum(late) / len(late) > sum(early) / len(early)

    def test_zero_strength_is_stationary(self, setup):
        from repro.workload import drifting_instance_stream

        template, domains = setup
        instances = list(
            drifting_instance_stream(template, domains, 60, seed=3, drift_strength=0.0)
        )
        name = next(iter(template.range_variables))
        values = list(domains.domain(name))
        early = [values.index(i.instantiation[name]) for i in instances[:20]]
        late = [values.index(i.instantiation[name]) for i in instances[-20:]]
        # No systematic movement: means stay within one domain step.
        assert abs(sum(late) / len(late) - sum(early) / len(early)) <= 1.0

    def test_deterministic(self, setup):
        from repro.workload import drifting_instance_stream

        template, domains = setup
        a = [i.instantiation.key for i in drifting_instance_stream(template, domains, 10, seed=7)]
        b = [i.instantiation.key for i in drifting_instance_stream(template, domains, 10, seed=7)]
        assert a == b
