"""Unit tests for the streaming layer's building blocks.

The differential/property suites prove the end-to-end invariant; these
tests pin the pieces: in-place application and its receipt, influence
depths/balls, index repair hooks, session plumbing (events, duplicate
offers, relevance rejection), and the budget/fault fallbacks.
"""

import pytest

from repro.core.relevance import RelevanceScorer
from repro.errors import ConfigurationError, GraphError
from repro.graph.builder import GraphBuilder
from repro.groups import GroupSet, NodeGroup
from repro.matching.delta import GraphDelta
from repro.query import Instantiation, Op, QueryInstance, QueryTemplate
from repro.runtime.budget import Budget, TickingClock
from repro.runtime.faults import FaultInjector, FaultKind, FaultSpec
from repro.streaming import (
    GenerateEvent,
    OfferEvent,
    StreamingSession,
    UpdateEvent,
    apply_delta_in_place,
    graph_signature,
)
from repro.streaming.reverify import ball_of, influence_depths, instance_diameter


def chain_graph(n=4):
    b = GraphBuilder()
    for i in range(n):
        b.node("a", x=i)
    for i in range(n - 1):
        b.edge(i, i + 1, "e")
    return b.build()


def two_hop_template():
    return (
        QueryTemplate.builder("two-hop")
        .node("u0", "a")
        .node("u1", "a")
        .node("u2", "a")
        .fixed_edge("u1", "u0", "e")
        .fixed_edge("u2", "u1", "e")
        .range_var("xl", "u2", "x", Op.GE)
        .output("u0")
        .build()
    )


def make_session(graph, **options):
    groups = GroupSet([NodeGroup("all", frozenset(graph.node_ids()), 1)])
    options.setdefault("epsilon", 0.2)
    options.setdefault("max_domain_values", 4)
    return StreamingSession(graph, two_hop_template(), groups, **options)


def instance(bound=0):
    return QueryInstance(Instantiation(two_hop_template(), {"xl": bound}))


class TestApplyInPlace:
    def test_mutates_same_object(self):
        graph = chain_graph()
        receipt = apply_delta_in_place(
            graph, GraphDelta(insert_edges=((3, 0, "e"),))
        )
        assert graph.has_edge(3, 0, "e")
        assert receipt.edges_inserted == 1
        assert receipt.touched_nodes == {0, 3}

    def test_duplicate_insert_is_idempotent(self):
        graph = chain_graph()
        receipt = apply_delta_in_place(
            graph, GraphDelta(insert_edges=((0, 1, "e"),))
        )
        assert receipt.edges_inserted == 0
        assert graph.num_edges == 3

    def test_invalid_delta_leaves_graph_untouched(self):
        graph = chain_graph()
        before = graph_signature(graph)
        with pytest.raises(GraphError):
            apply_delta_in_place(
                graph,
                GraphDelta(
                    insert_edges=((3, 0, "e"),), delete_edges=((0, 3, "e"),)
                ),
            )
        assert graph_signature(graph) == before

    def test_attribute_receipt_coalesces(self):
        graph = chain_graph()
        receipt = apply_delta_in_place(
            graph, GraphDelta(set_attributes=((1, "x", 5), (1, "x", 9)))
        )
        assert receipt.attributes_set == 1
        assert receipt.touched_attributes == (("a", "x"),)
        assert graph.attribute(1, "x") == 9


class TestInfluence:
    def test_depths_bounded(self):
        graph = chain_graph(6)
        depths = influence_depths(graph, {0}, limit=2)
        assert depths == {0: 0, 1: 1, 2: 2}

    def test_ball_is_two_sided_union(self):
        old = {0: 0, 1: 1, 2: 2}
        new = {5: 0, 4: 1}
        assert ball_of(old, new, 1) == {0, 1, 5, 4}
        assert ball_of(old, new, 0) == {0, 5}

    def test_instance_diameter(self):
        assert instance_diameter(instance()) == 2


class TestSessionPlumbing:
    def test_duplicate_offers_dropped(self):
        session = make_session(chain_graph())
        first = session.offer([instance(0)])
        second = session.offer([instance(0)])
        assert len(first) == 1
        assert second == []
        assert len(session.ledger) == 1
        assert session.metrics.value("streaming.duplicate_offers") == 1

    def test_custom_relevance_rejected(self):
        class Structural(RelevanceScorer):
            def __call__(self, node_id):
                return 1.0

        graph = chain_graph()
        groups = GroupSet([NodeGroup("all", frozenset(graph.node_ids()), 1)])
        with pytest.raises(ConfigurationError):
            StreamingSession(
                graph, two_hop_template(), groups,
                epsilon=0.2, relevance=Structural(),
            )

    def test_consume_dispatches_events(self):
        session = make_session(chain_graph())
        results = session.consume(
            [
                OfferEvent((instance(0),)),
                UpdateEvent(GraphDelta(insert_edges=((3, 0, "e"),))),
                GenerateEvent(count=4, seed=1),
            ]
        )
        assert len(results) == 3
        assert len(results[0]) == 1  # offered evaluations
        assert results[1].receipt is not None  # update report
        assert session.metrics.value("streaming.generated") == 4

    def test_unknown_event_rejected(self):
        session = make_session(chain_graph())
        with pytest.raises(ConfigurationError):
            session.consume([object()])

    def test_update_report_counts(self):
        session = make_session(chain_graph())
        session.offer([instance(0)])
        report = session.update(GraphDelta(insert_edges=((3, 0, "e"),)))
        assert report.rechecked + report.skipped == 1
        assert report.archive_size == len(session.archive)
        assert report.seconds > 0
        assert not report.is_empty


class TestBudgetFallback:
    def test_deadline_trip_falls_back_to_cold_rebuild(self):
        session = make_session(chain_graph())
        session.offer([instance(0), instance(1)])
        # A pre-expired deadline: the guard trips on the first ledger
        # checkpoint and the cold path repairs everything.
        budget = Budget(deadline_seconds=0.001, clock=TickingClock(tick=1.0))
        report = session.update(
            GraphDelta(insert_edges=((3, 0, "e"),)), budget=budget
        )
        assert report.recovered == "budget"
        assert session.metrics.value("streaming.budget_fallbacks") == 1
        # The mutation itself still landed before the fallback.
        assert session.graph.has_edge(3, 0, "e")
        assert graph_signature(session.graph) != graph_signature(chain_graph())

    def test_generous_budget_stays_incremental(self):
        session = make_session(chain_graph())
        session.offer([instance(0)])
        report = session.update(
            GraphDelta(insert_edges=((3, 0, "e"),)),
            budget=Budget(max_backtracks=10_000_000),
        )
        assert report.recovered is None
        assert session.metrics.value("streaming.budget_fallbacks") == 0


class TestFaultRecovery:
    def test_injected_fault_triggers_cold_recovery(self):
        faults = FaultInjector([FaultSpec(FaultKind.ERROR, batch_index=0)])
        session = make_session(chain_graph(), faults=faults)
        session.offer([instance(0), instance(1)])
        report = session.update(GraphDelta(insert_edges=((3, 0, "e"),)))
        assert report.recovered == "fault"
        assert session.metrics.value("streaming.fault_recoveries") == 1
        # Recovery re-evaluated the ledger on the mutated graph.
        assert report.rescored == 2

    def test_later_updates_unaffected(self):
        faults = FaultInjector([FaultSpec(FaultKind.ERROR, batch_index=0)])
        session = make_session(chain_graph(), faults=faults)
        session.offer([instance(0)])
        first = session.update(GraphDelta(insert_edges=((3, 0, "e"),)))
        second = session.update(GraphDelta(delete_edges=((3, 0, "e"),)))
        assert first.recovered == "fault"
        assert second.recovered is None
