"""Unit tests for the dataset emulations and registry."""

import pytest

from repro.datasets import (
    build_cite,
    build_dbp,
    build_lki,
    dataset_bundle,
    dataset_names,
)
from repro.datasets.dbp import DBP_SCHEMA, dbp_groups
from repro.datasets.lki import LKI_SCHEMA, lki_groups
from repro.datasets.cite import CITE_SCHEMA, cite_groups
from repro.datasets.sampler import Sampler
from repro.errors import DatasetError
from repro.graph.statistics import compute_statistics


class TestDeterminism:
    @pytest.mark.parametrize("builder", [build_dbp, build_lki, build_cite])
    def test_same_seed_same_graph(self, builder):
        a = builder(scale=0.05)
        b = builder(scale=0.05)
        assert a.num_nodes == b.num_nodes
        assert a.num_edges == b.num_edges
        assert sorted(e.key for e in a.edges()) == sorted(e.key for e in b.edges())

    @pytest.mark.parametrize("builder", [build_dbp, build_lki, build_cite])
    def test_different_seed_differs(self, builder):
        a = builder(scale=0.05, seed=1)
        b = builder(scale=0.05, seed=2)
        assert sorted(e.key for e in a.edges()) != sorted(e.key for e in b.edges())


class TestSchemas:
    def test_dbp_schema_matches_graph(self):
        graph = build_dbp(scale=0.05)
        assert set(graph.node_labels()) <= set(DBP_SCHEMA.node_labels)
        for edge_spec in DBP_SCHEMA.edges:
            assert edge_spec.label in graph.edge_labels()

    def test_lki_schema_matches_graph(self):
        graph = build_lki(scale=0.05)
        assert set(graph.node_labels()) == {"person", "org"}
        assert set(graph.edge_labels()) <= {"worksAt", "recommend", "coReview"}
        assert LKI_SCHEMA.numeric_attributes("person")

    def test_cite_schema_matches_graph(self):
        graph = build_cite(scale=0.05)
        assert set(graph.node_labels()) == {"paper", "author", "venue"}
        for label in CITE_SCHEMA.node_labels:
            assert graph.count_label(label) > 0

    def test_unknown_schema_label(self):
        with pytest.raises(DatasetError):
            DBP_SCHEMA.node("spaceship")


class TestCiteCitationConsistency:
    def test_attribute_equals_in_degree(self):
        graph = build_cite(scale=0.05)
        for paper in graph.nodes_with_label("paper"):
            structural = len(graph.predecessors(paper, "cites"))
            assert graph.attribute(paper, "numberOfCitations") == structural


class TestGroups:
    def test_dbp_genre_groups(self):
        graph = build_dbp(scale=0.1)
        groups = dbp_groups(graph, num_groups=3, coverage_total=9)
        assert len(groups) == 3
        for group in groups:
            assert group.coverage <= len(group)
            assert group.coverage <= 3

    def test_dbp_country_groups(self):
        graph = build_dbp(scale=0.1)
        groups = dbp_groups(graph, num_groups=2, coverage_total=4, by="country")
        assert groups.names == ("US", "UK")

    def test_lki_gender_groups(self):
        graph = build_lki(scale=0.1)
        groups = lki_groups(graph, coverage_total=10)
        assert set(groups.names) == {"M", "F"}
        total = sum(len(g) for g in groups)
        assert total == graph.count_label("person")

    def test_cite_topic_groups(self):
        graph = build_cite(scale=0.1)
        groups = cite_groups(graph, num_groups=4, coverage_total=8)
        assert len(groups) == 4


class TestRegistry:
    def test_names(self):
        assert set(dataset_names()) == {"dbp", "lki", "cite"}

    def test_bundles_build(self):
        for name in dataset_names():
            bundle = dataset_bundle(name, scale=0.05, coverage_total=4)
            assert bundle.graph.num_nodes > 0
            assert bundle.template.num_variables > 0
            assert bundle.groups.total_coverage > 0

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            dataset_bundle("imdb")

    def test_explicit_seed_passthrough(self):
        a = dataset_bundle("dbp", scale=0.05, seed=99)
        b = dataset_bundle("dbp", scale=0.05, seed=99)
        assert a.graph.num_edges == b.graph.num_edges


class TestScale:
    def test_scale_grows_graph(self):
        small = build_lki(scale=0.05)
        bigger = build_lki(scale=0.2)
        assert bigger.num_nodes > small.num_nodes
        assert bigger.num_edges > small.num_edges

    def test_statistics_table(self):
        stats = compute_statistics(build_dbp(scale=0.05))
        row = stats.as_row()
        assert row["|V|"] == stats.num_nodes
        assert row["avg #attr"] > 0


class TestSampler:
    def test_zipf_skews_to_front(self):
        sampler = Sampler(0)
        pool = list(range(10))
        picks = [sampler.zipf_choice(pool) for _ in range(2000)]
        assert picks.count(0) > picks.count(9)

    def test_gauss_int_clipped(self):
        sampler = Sampler(0)
        values = [sampler.gauss_int(5, 10, 0, 10) for _ in range(500)]
        assert min(values) >= 0 and max(values) <= 10

    def test_preferential_targets_distinct(self):
        sampler = Sampler(0)
        boost = []
        picks = sampler.preferential_targets(list(range(100)), 10, boost)
        assert len(picks) == len(set(picks)) == 10

    def test_distinct_respects_pool(self):
        sampler = Sampler(0)
        assert len(sampler.distinct([1, 2], 10)) == 2
