"""Unit tests for offline k-representative selection."""

import pytest

from repro.core.representatives import select_representatives
from repro.errors import ConfigurationError


class Point:
    def __init__(self, delta, coverage):
        self.delta = delta
        self.coverage = coverage

    def __repr__(self):
        return f"P({self.delta}, {self.coverage})"


def front(n):
    """An n-point anti-chain front from (n, 0) to (0, n)."""
    return [Point(n - i, i) for i in range(n + 1)]


class TestSelectRepresentatives:
    def test_small_set_returned_whole(self):
        points = front(2)
        assert len(select_representatives(points, 10)) == 3

    def test_exact_k(self):
        points = front(10)
        picked = select_representatives(points, 4)
        assert len(picked) == 4

    def test_extremes_always_kept(self):
        points = front(10)
        picked = select_representatives(points, 3)
        deltas = [p.delta for p in picked]
        coverages = [p.coverage for p in picked]
        assert max(deltas) == 10  # The best-δ extreme.
        assert max(coverages) == 10  # The best-f extreme.

    def test_spread(self):
        points = front(10)
        picked = select_representatives(points, 3)
        # With the two extremes fixed, the third pick is near the middle.
        middle = [p for p in picked if 0 < p.delta < 10]
        assert len(middle) == 1
        assert 3 <= middle[0].delta <= 7

    def test_output_sorted_by_objectives(self):
        picked = select_representatives(front(8), 4)
        deltas = [p.delta for p in picked]
        assert deltas == sorted(deltas, reverse=True)

    def test_duplicates_collapse(self):
        points = [Point(1, 1)] * 5 + [Point(2, 0)]
        picked = select_representatives(points, 4)
        coords = [(p.delta, p.coverage) for p in picked]
        assert len(set(coords)) == len(coords) == 2

    def test_k_one(self):
        picked = select_representatives(front(5), 1)
        assert len(picked) == 1
        assert picked[0].delta == 5  # Seeded with the max-δ point.

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            select_representatives(front(3), 0)

    def test_empty_input(self):
        assert select_representatives([], 3) == []

    def test_integration_with_generation_result(self, small_lki_config):
        from repro.core import Kungs

        result = Kungs(small_lki_config).run()
        picked = select_representatives(result.instances, 2)
        assert 1 <= len(picked) <= 2
