"""Unit tests for the refinement preorder (Lemma 2 structure)."""

import pytest

from repro.query import (
    Instantiation,
    Op,
    QueryInstance,
    QueryTemplate,
    compare_instantiations,
    refines,
    refines_at,
    strictly_refines,
)
from repro.query.refinement import between


@pytest.fixture(scope="module")
def template():
    return (
        QueryTemplate.builder("t")
        .node("u0", "a")
        .node("u1", "a")
        .fixed_edge("u1", "u0", "e")
        .range_var("ge", "u1", "x", Op.GE)
        .range_var("le", "u0", "y", Op.LE)
        .edge_var("xe", "u0", "u1", "f")
        .output("u0")
        .build()
    )


def make(template, ge="_", le="_", xe="_"):
    return Instantiation(template, {"ge": ge, "le": le, "xe": xe})


class TestRefines:
    def test_reflexive(self, template):
        inst = make(template, 5, 5, 1)
        assert refines(inst, inst)

    def test_ge_direction(self, template):
        assert refines(make(template, 10), make(template, 5))
        assert not refines(make(template, 5), make(template, 10))

    def test_le_direction(self, template):
        assert refines(make(template, le=5), make(template, le=10))
        assert not refines(make(template, le=10), make(template, le=5))

    def test_edge_direction(self, template):
        assert refines(make(template, xe=1), make(template, xe=0))
        assert not refines(make(template, xe=0), make(template, xe=1))

    def test_wildcard_is_bottom(self, template):
        assert refines(make(template, 5, 5, 1), make(template))
        assert not refines(make(template), make(template, 5, 5, 1))

    def test_mixed_incomparable(self, template):
        a = make(template, ge=10, le=10)
        b = make(template, ge=5, le=5)
        # a refines on ge but relaxes on le: incomparable.
        assert not refines(a, b) and not refines(b, a)

    def test_per_variable(self, template):
        a = make(template, ge=10, le=5)
        b = make(template, ge=5, le=10)
        assert refines_at(a, b, "ge")
        assert refines_at(a, b, "le")
        assert refines(a, b)

    def test_cross_template_never_refines(self, template):
        other = (
            QueryTemplate.builder("other")
            .node("u0", "a")
            .node("u1", "a")
            .fixed_edge("u1", "u0", "e")
            .range_var("ge", "u1", "x", Op.GE)
            .range_var("le", "u0", "y", Op.LE)
            .edge_var("xe", "u0", "u1", "f")
            .output("u0")
            .build()
        )
        assert not refines(make(template, 5), make(other, 5))

    def test_instances_accepted(self, template):
        a = QueryInstance(make(template, 10, 5, 1))
        b = QueryInstance(make(template, 5, 10, 0))
        assert refines(a, b)


class TestStrictAndCompare:
    def test_strictly_refines(self, template):
        assert strictly_refines(make(template, 10), make(template, 5))
        assert not strictly_refines(make(template, 5), make(template, 5))

    def test_compare(self, template):
        assert compare_instantiations(make(template, 10), make(template, 5)) == 1
        assert compare_instantiations(make(template, 5), make(template, 10)) == -1
        assert compare_instantiations(make(template, 5), make(template, 5)) == 0
        # Incomparable also yields 0.
        assert (
            compare_instantiations(
                make(template, ge=10, le=10), make(template, ge=5, le=5)
            )
            == 0
        )

    def test_between(self, template):
        lo = QueryInstance(make(template, 5, 10, 0))
        mid = QueryInstance(make(template, 7, 8, 0))
        hi = QueryInstance(make(template, 10, 5, 1))
        assert between(mid, lo, hi)
        assert not between(lo, lo, hi)
        assert not between(hi, lo, hi)
