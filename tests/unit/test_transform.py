"""Unit tests for graph transformations."""

import pytest

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.transform import (
    filter_nodes,
    largest_weakly_connected_component,
    project_labels,
    relabel,
)


@pytest.fixture()
def graph():
    b = GraphBuilder("t")
    p0 = b.node("person", age=30)
    p1 = b.node("person", age=40)
    o0 = b.node("org", size=5)
    spam = b.node("bot", score=1)
    b.edge(p0, p1, "knows")
    b.edge(p0, o0, "worksAt")
    b.edge(spam, p0, "spams")
    # An isolated fragment.
    f0 = b.node("person", age=99)
    f1 = b.node("person", age=98)
    b.edge(f0, f1, "knows")
    return b.build()


class TestFilterNodes:
    def test_predicate_filtering(self, graph):
        adults = filter_nodes(graph, lambda n: n.get("age", 0) >= 40)
        assert adults.num_nodes == 3
        assert all(adults.attribute(v, "age") >= 40 for v in adults.node_ids())

    def test_edges_restricted(self, graph):
        people = filter_nodes(graph, lambda n: n.label == "person")
        assert people.has_edge(0, 1, "knows")
        assert people.num_edges == 2  # worksAt and spams dropped.

    def test_ids_preserved(self, graph):
        people = filter_nodes(graph, lambda n: n.label == "person")
        assert people.attribute(1, "age") == 40


class TestProjectLabels:
    def test_node_projection(self, graph):
        sub = project_labels(graph, ["person", "org"])
        assert sub.node_labels() == {"person", "org"}
        assert not sub.has_node(3)  # The bot.

    def test_edge_projection(self, graph):
        sub = project_labels(graph, ["person", "org"], edge_labels=["worksAt"])
        assert sub.num_edges == 1
        assert sub.has_edge(0, 2, "worksAt")


class TestRelabel:
    def test_node_and_edge_relabel(self, graph):
        renamed = relabel(
            graph,
            node_label_map={"person": "user"},
            edge_label_map={"knows": "follows"},
        )
        assert renamed.count_label("user") == 4
        assert renamed.has_edge(0, 1, "follows")
        assert renamed.count_label("org") == 1  # Unmapped passes through.

    def test_attribute_rename(self, graph):
        renamed = relabel(graph, attribute_map={"age": "years"})
        assert renamed.attribute(0, "years") == 30
        assert renamed.attribute(0, "age") is None

    def test_colliding_attribute_map_rejected(self, graph):
        with pytest.raises(GraphError):
            relabel(graph, attribute_map={"age": "x", "size": "x"})

    def test_rename_onto_existing_attribute_rejected(self):
        b = GraphBuilder()
        b.node("a", x=1, y=2)
        with pytest.raises(GraphError):
            relabel(b.build(), attribute_map={"x": "y"})


class TestLargestComponent:
    def test_keeps_core(self, graph):
        core = largest_weakly_connected_component(graph)
        # Core component: p0, p1, o0, bot (4 nodes) vs fragment (2).
        assert core.num_nodes == 4
        assert core.has_node(0) and not core.has_node(4)

    def test_empty_graph(self):
        empty = GraphBuilder().build()
        assert largest_weakly_connected_component(empty).num_nodes == 0

    def test_single_component_unchanged_size(self):
        b = GraphBuilder()
        a0, a1 = b.node("a"), b.node("a")
        b.edge(a0, a1, "e")
        core = largest_weakly_connected_component(b.build())
        assert core.num_nodes == 2
