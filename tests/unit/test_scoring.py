"""Unit tests for the delta-scoring subsystem (repro.scoring)."""

from __future__ import annotations

import pytest

from repro.core.config import GenerationConfig
from repro.core.lattice import InstanceLattice
from repro.core.measures import (
    CoverageMeasure,
    DiversityMeasure,
    WeightedCoverageMeasure,
)
from repro.errors import ConfigurationError
from repro.graph.attributed_graph import AttributedGraph
from repro.groups import GroupRule, system_from_rules
from repro.groups.groups import GroupSet, NodeGroup
from repro.obs.registry import MetricsRegistry
from repro.scoring import AttributeStats, ScoreEngine, ScoreState


def _mixed_graph(n=40):
    """One-label graph with numeric, categorical and missing attributes."""
    graph = AttributedGraph("scoring-toy")
    for i in range(n):
        attrs = {}
        if i % 3:
            attrs["num"] = (i * 7) % 23
        if i % 4:
            attrs["cat"] = ("r", "g", "b")[i % 3]
        if i % 5 == 0:
            attrs["mix"] = i if i % 2 else f"s{i}"
        graph.add_node(i, "m", attrs)
    return graph.freeze()


def _groups(n=40):
    return GroupSet(
        [
            NodeGroup("even", frozenset(range(0, n, 2)), 2),
            NodeGroup("odd", frozenset(range(1, n, 2)), 2),
        ]
    )


GRAPH = _mixed_graph()
GROUPS = _groups()
ATTRIBUTES = ("cat", "mix", "num")


class TestAttributeStats:
    def test_add_remove_roundtrip(self):
        st = AttributeStats()
        for v in (5, 2, 5, "x", 9, 2.0):
            st.add(v)
        assert st.present == 6
        assert st.non_numeric == 1
        assert st.numeric == [2, 2.0, 5, 5, 9]
        st.remove("x")
        st.remove(5)
        assert st.present == 4
        assert st.non_numeric == 0
        # 2 and 2.0 share one dict key — the from-scratch categorical
        # formula builds its counts the same way.
        assert st.counts == {5: 1, 2: 2, 9: 1}

    def test_int_float_key_collapse(self):
        # 5 and 5.0 are the same dict key — exactly the semantics of the
        # from-scratch pair_sum_categorical, which also builds a dict.
        st = AttributeStats()
        st.add(5)
        st.add(5.0)
        assert st.counts == {5: 2}
        st.remove(5.0)
        st.remove(5)
        assert st.counts == {} and st.numeric == []

    def test_clone_is_independent(self):
        st = AttributeStats()
        st.add(1)
        twin = st.clone()
        twin.add(2)
        assert st.numeric == [1] and twin.numeric == [1, 2]


class TestScoreState:
    def test_build_matches_manual_counts(self):
        state = ScoreState.build({0, 1, 2, 3}, GRAPH, ATTRIBUTES, GROUPS)
        assert state.nodes == [0, 1, 2, 3]
        assert state.overlaps == GROUPS.overlap_counts({0, 1, 2, 3})
        assert state.attrs["num"].present == 2  # nodes 0 and 3 lack "num"

    def test_derive_equals_build(self):
        parent = ScoreState.build(range(20), GRAPH, ATTRIBUTES, GROUPS)
        removed = frozenset({3, 7, 12})
        added = frozenset({25, 31})
        child = parent.derive(removed, added, GRAPH, GROUPS)
        target = (set(range(20)) - removed) | added
        rebuilt = ScoreState.build(target, GRAPH, ATTRIBUTES, GROUPS)
        assert child.signature() == rebuilt.signature()
        # The parent state is untouched (persistence-by-copying).
        assert parent.signature() == ScoreState.build(
            range(20), GRAPH, ATTRIBUTES, GROUPS
        ).signature()

    def test_derive_chain_equals_build(self):
        nodes = set(range(30))
        state = ScoreState.build(nodes, GRAPH, ATTRIBUTES, GROUPS)
        for step in range(8):
            removed = frozenset(sorted(nodes)[: 1 + step % 3])
            added = frozenset({30 + step}) if step % 2 else frozenset()
            nodes = (nodes - removed) | added
            state = state.derive(removed, added, GRAPH, GROUPS)
            assert state.signature() == ScoreState.build(
                nodes, GRAPH, ATTRIBUTES, GROUPS
            ).signature()

    def test_groups_none_skips_overlaps(self):
        state = ScoreState.build({1, 2}, GRAPH, ATTRIBUTES, None)
        child = state.derive(frozenset({1}), frozenset({5}), GRAPH, None)
        assert state.overlaps == {} and child.overlaps == {}


class TestScoreEngine:
    def _engine(self, **kwargs):
        diversity = DiversityMeasure(GRAPH, "m", lam=0.5)
        coverage = CoverageMeasure(GROUPS)
        metrics = MetricsRegistry()
        engine = ScoreEngine(GRAPH, diversity, coverage, metrics=metrics, **kwargs)
        return engine, diversity, coverage, metrics

    def test_root_score_equals_measures_exactly(self):
        engine, diversity, coverage, _ = self._engine()
        answer = frozenset(range(25))
        scored = engine.score(answer)
        assert scored.delta == diversity.of(answer)
        assert scored.coverage == coverage.of(answer)
        assert scored.feasible == coverage.is_feasible(answer)

    def test_delta_path_is_bitwise_exact(self):
        engine, diversity, coverage, metrics = self._engine()
        parent = frozenset(range(30))
        engine.score(parent)
        child = parent - {2, 9} | {33}
        scored = engine.score(child, parent)
        assert metrics.value("scoring.delta_updates") == 1
        assert scored.delta == diversity.of(child)
        assert scored.coverage == coverage.of(child)

    def test_fingerprint_cache_hit(self):
        engine, _, _, metrics = self._engine()
        answer = frozenset(range(10))
        first = engine.score(answer)
        second = engine.score(frozenset(range(10)))
        assert first == second
        assert metrics.value("scoring.cache_hits") == 1
        assert metrics.value("scoring.full_builds") == 1

    def test_large_delta_falls_back_to_build(self):
        engine, _, _, metrics = self._engine(max_delta_fraction=0.1)
        parent = frozenset(range(10))
        engine.score(parent)
        child = frozenset(range(5, 20))  # |Δ| = 15 > 0.1 · 10
        engine.score(child, parent)
        assert metrics.value("scoring.fallback_large_delta") == 1
        assert metrics.value("scoring.delta_updates") == 0
        assert metrics.value("scoring.full_builds") == 2

    def test_lru_bound_and_evictions(self):
        engine, _, _, metrics = self._engine(max_entries=4)
        for i in range(7):
            engine.score(frozenset({i, i + 1}))
        assert len(engine._scores) == 4
        assert metrics.value("scoring.cache_evictions") == 3
        assert metrics.value("scoring.state_evictions") == 3

    def test_subclassed_measure_disables_delta_but_stays_exact(self):
        class TwistedDiversity(DiversityMeasure):
            def of(self, matches):
                return super().of(matches) + 1.0

        diversity = TwistedDiversity(GRAPH, "m", lam=0.5)
        coverage = CoverageMeasure(GROUPS)
        metrics = MetricsRegistry()
        engine = ScoreEngine(GRAPH, diversity, coverage, metrics=metrics)
        parent = frozenset(range(12))
        engine.score(parent)
        child = parent - {3}
        scored = engine.score(child, parent)
        assert scored.delta == diversity.of(child)

    def test_weighted_coverage_delta_path(self):
        diversity = DiversityMeasure(GRAPH, "m", lam=0.5)
        coverage = WeightedCoverageMeasure(GROUPS, {"even": 2.0})
        metrics = MetricsRegistry()
        engine = ScoreEngine(GRAPH, diversity, coverage, metrics=metrics)
        parent = frozenset(range(20))
        engine.score(parent)
        child = parent - {0, 2}
        scored = engine.score(child, parent)
        assert metrics.value("scoring.delta_updates") == 1
        assert scored.coverage == coverage.of(child)

    def test_clear_drops_states(self):
        engine, _, _, metrics = self._engine()
        engine.score(frozenset(range(5)))
        engine.clear()
        assert not engine._scores and not engine._states
        engine.score(frozenset(range(5)))
        assert metrics.value("scoring.full_builds") == 2


class TestScorePatching:
    """The streaming patch tier: in-place entry repair + the node index."""

    RULES = [
        GroupRule("red", {"cat": "r"}, 0, label="m"),
        GroupRule("warm", {"cat": ("r", "g")}, 0, label="m"),
    ]

    def _engine(self, **kwargs):
        # Fresh (mutable) graph per test — patching rewrites attributes
        # in place, so the shared module-level GRAPH must stay untouched.
        graph = _mixed_graph()
        groups = system_from_rules(graph, self.RULES)
        diversity = DiversityMeasure(graph, "m", lam=0.5)
        coverage = CoverageMeasure(groups)
        metrics = MetricsRegistry()
        engine = ScoreEngine(graph, diversity, coverage, metrics=metrics, **kwargs)
        return graph, groups, engine, metrics

    def _mutate(self, graph, groups, engine, *changes):
        """In-place churn + membership repair, mirroring the session."""
        from repro.matching.delta import GraphDelta

        patched = []
        for node, name, value in changes:
            old = graph._set_attribute_in_place(node, name, value)
            patched.append((node, name, old, value))
        diff = groups.repair_membership(
            GraphDelta(set_attributes=tuple(changes))
        )
        engine.diversity.distance.invalidate_nodes(
            [node for node, _, _ in changes]
        )
        return patched, diff

    def test_patched_scores_equal_fresh_rebuild(self):
        graph, groups, engine, metrics = self._engine()
        answers = [frozenset(range(12)), frozenset(range(8, 20)),
                   frozenset(range(30, 38))]
        for answer in answers:
            engine.score(answer)
        # Spread-safe churn: "num" stays inside its active range, "cat"
        # moves node 4 out of "red" (and node 9 into it).
        changes, diff = self._mutate(
            graph, groups, engine,
            (4, "cat", "b"), (9, "cat", "r"), (10, "num", 5),
        )
        patched, invalidated = engine.patch_nodes(changes, diff)
        assert patched == 2 and invalidated == 0  # third answer disjoint
        assert metrics.value("scoring.patched_entries") == 2
        fresh_div = DiversityMeasure(graph, "m", lam=0.5)
        fresh_cov = CoverageMeasure(system_from_rules(graph, self.RULES))
        for answer in answers:
            scored = engine.score(answer)
            assert scored.delta == fresh_div.of(answer)
            assert scored.coverage == fresh_cov.of(answer)
            assert scored.feasible == fresh_cov.is_feasible(answer)
        # All three still served from the fingerprint cache — warm.
        assert metrics.value("scoring.cache_hits") == 3

    def test_straddler_falls_back_to_invalidation(self):
        graph, groups, engine, metrics = self._engine()
        answer = frozenset(range(0, 40, 5))  # the "mix" carriers
        engine.score(answer)
        # node 10 has mix="s10" (string); a numeric rewrite straddles the
        # numeric/non-numeric boundary — drop, don't patch. 20 sits inside
        # the numeric mix range, so no normalizing spread moves (a spread
        # change is the session's full-rescore tier, not the engine's).
        changes, diff = self._mutate(graph, groups, engine, (10, "mix", 20))
        patched, invalidated = engine.patch_nodes(changes, diff)
        assert patched == 0 and invalidated == 2
        assert metrics.value("scoring.patched_entries") == 0
        assert metrics.value("scoring.invalidated_entries") == 2
        scored = engine.score(answer)  # rebuild, still exact
        assert metrics.value("scoring.full_builds") == 2
        assert scored.delta == DiversityMeasure(graph, "m", lam=0.5).of(answer)

    def test_large_patch_fraction_falls_back(self):
        graph, groups, engine, _ = self._engine(max_delta_fraction=0.1)
        answer = frozenset(range(5))
        engine.score(answer)
        changes, diff = self._mutate(graph, groups, engine, (1, "num", 3))
        patched, invalidated = engine.patch_nodes(changes, diff)
        # 1 touched node > 0.1 · 5 — past the threshold a rebuild wins.
        assert patched == 0 and invalidated == 2

    def test_invalidate_nodes_drops_only_intersecting(self):
        graph, groups, engine, metrics = self._engine()
        warm = frozenset(range(10))
        cold = frozenset(range(20, 30))
        engine.score(warm)
        engine.score(cold)
        dropped = engine.invalidate_nodes([25])
        assert dropped == 2  # cold's score + state entries
        assert metrics.value("scoring.invalidated_entries") == 2
        engine.score(warm)
        assert metrics.value("scoring.cache_hits") == 1
        engine.score(cold)
        assert metrics.value("scoring.full_builds") == 3

    def test_eviction_keeps_index_consistent(self):
        graph, groups, engine, _ = self._engine(max_entries=2)
        for i in range(6):
            engine.score(frozenset({i, i + 1}))
        live = set(engine._scores) | set(engine._states)
        indexed = set()
        for bucket in engine._by_node.values():
            indexed |= bucket
        assert indexed == live
        # Patching nodes of evicted entries is a clean no-op.
        changes, diff = self._mutate(graph, groups, engine, (0, "num", 5))
        assert engine.patch_nodes(changes, diff) == (0, 0)


class TestGroupIndex:
    def test_group_of_matches_membership(self):
        for node in range(45):
            name = GROUPS.group_of(node)
            if node < 40:
                assert name == ("even" if node % 2 == 0 else "odd")
            else:
                assert name is None

    def test_overlap_counts_equals_overlaps(self):
        answer = {1, 2, 3, 10, 41}
        assert GROUPS.overlap_counts(answer) == GROUPS.overlaps(answer)

    def test_overlap_set_fast_path(self):
        group = NodeGroup("g", frozenset({1, 2, 3}), 1)
        assert group.overlap({2, 3, 9}) == 2
        assert group.overlap(frozenset({2, 3, 9})) == 2
        assert group.overlap([2, 3, 9, 3]) == 3  # iterable fallback counts dups
        assert group.overlap(iter([1, 7])) == 1


class TestMeasuresMaintained:
    def test_of_overlaps_equals_of(self):
        coverage = CoverageMeasure(GROUPS)
        answer = set(range(7))
        assert coverage.of_overlaps(GROUPS.overlap_counts(answer)) == coverage.of(answer)
        assert coverage.feasible_overlaps(
            GROUPS.overlap_counts(answer)
        ) == coverage.is_feasible(answer)

    def test_weighted_upper_bound_cached_and_exact(self):
        coverage = WeightedCoverageMeasure(GROUPS, {"even": 3.0, "odd": 0.5})
        assert coverage.upper_bound == 3.0 * 2 + 0.5 * 2
        answer = set(range(5))
        assert coverage.of_overlaps(GROUPS.overlap_counts(answer)) == coverage.of(answer)

    def test_of_maintained_equals_of(self):
        for mode in ("auto", "exact", "decomposed"):
            diversity = DiversityMeasure(GRAPH, "m", lam=0.7, mode=mode)
            answer = set(range(18))
            state = ScoreState.build(answer, GRAPH, diversity.distance.attributes, None)
            stats = state.attrs if mode != "exact" else None
            assert diversity.of_maintained(state.nodes, stats) == diversity.of(answer)


class TestConfigKnobs:
    def test_defaults_off(self, talent_config):
        assert talent_config.use_delta_scoring is False
        assert talent_config.scoring_delta_max_fraction == 0.5
        assert talent_config.score_cache_max_entries == 4096

    def test_validation(self, talent_graph, talent_template, talent_groups):
        with pytest.raises(ConfigurationError):
            GenerationConfig(
                talent_graph, talent_template, talent_groups,
                scoring_delta_max_fraction=1.5,
            )
        with pytest.raises(ConfigurationError):
            GenerationConfig(
                talent_graph, talent_template, talent_groups,
                score_cache_max_entries=0,
            )


class TestBallCacheLRU:
    def test_eviction_is_bounded_and_counted(self, talent_config):
        lattice = InstanceLattice(talent_config)
        lattice._BALL_CACHE_MAX = 3
        for i in range(5):
            lattice._ball(frozenset({4, 5 + i % 3, 6, 7, i}))
        assert len(lattice._ball_cache) <= 3
        assert lattice.metrics.value("lattice.ball_cache_evictions") >= 1

    def test_hit_refreshes_recency(self, talent_config):
        lattice = InstanceLattice(talent_config)
        lattice._BALL_CACHE_MAX = 2
        a, b, c = frozenset({4}), frozenset({5}), frozenset({6})
        lattice._ball(a)
        lattice._ball(b)
        lattice._ball(a)  # refresh a; b becomes the LRU entry
        lattice._ball(c)  # evicts b
        assert a in lattice._ball_cache and b not in lattice._ball_cache
