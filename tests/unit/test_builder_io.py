"""Unit tests for GraphBuilder and graph (de)serialization."""

import pytest

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder, graph_from_dicts
from repro.graph.io import load_json, load_jsonl, save_json, save_jsonl


def build_sample():
    b = GraphBuilder("sample")
    a = b.node("person", name="a", age=30)
    c = b.node("org", employees=10)
    b.edge(a, c, "worksAt")
    return b.build()


class TestBuilder:
    def test_sequential_ids(self):
        b = GraphBuilder()
        assert b.node("x") == 0
        assert b.node("y") == 1

    def test_node_with_id_advances_counter(self):
        b = GraphBuilder()
        b.node_with_id(10, "x")
        assert b.node("y") == 11

    def test_edges_batch(self):
        b = GraphBuilder()
        n0, n1, n2 = b.node("x"), b.node("x"), b.node("x")
        g = b.edges([(n0, n1, "e"), (n1, n2, "e")]).build()
        assert g.num_edges == 2

    def test_build_frozen_by_default(self):
        g = build_sample()
        with pytest.raises(GraphError):
            g.add_node(99, "x")

    def test_build_unfrozen(self):
        b = GraphBuilder()
        b.node("x")
        g = b.build(freeze=False)
        g.add_node(99, "y")
        assert g.num_nodes == 2


class TestGraphFromDicts:
    def test_roundtrip_records(self):
        g = graph_from_dicts(
            nodes=[
                {"id": 0, "label": "person", "age": 3},
                {"id": 1, "label": "org"},
            ],
            edges=[{"source": 0, "target": 1, "label": "worksAt"}],
        )
        assert g.num_nodes == 2
        assert g.attribute(0, "age") == 3
        assert g.has_edge(0, 1, "worksAt")

    def test_default_edge_label(self):
        g = graph_from_dicts(
            nodes=[{"id": 0, "label": "a"}, {"id": 1, "label": "a"}],
            edges=[{"source": 0, "target": 1}],
        )
        assert g.has_edge(0, 1, "")


class TestJsonIO:
    def test_json_roundtrip(self, tmp_path):
        g = build_sample()
        path = tmp_path / "g.json"
        save_json(g, path)
        loaded = load_json(path)
        assert loaded.num_nodes == g.num_nodes
        assert loaded.num_edges == g.num_edges
        assert loaded.attribute(0, "age") == 30
        assert loaded.has_edge(0, 1, "worksAt")
        assert loaded.name == "sample"

    def test_jsonl_roundtrip(self, tmp_path):
        g = build_sample()
        path = tmp_path / "g.jsonl"
        save_jsonl(g, path)
        loaded = load_jsonl(path)
        assert loaded.num_nodes == g.num_nodes
        assert loaded.num_edges == g.num_edges
        assert loaded.name == "sample"

    def test_jsonl_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "mystery"}\n')
        with pytest.raises(GraphError):
            load_jsonl(path)

    def test_jsonl_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        loaded = load_jsonl(path)
        assert loaded.num_nodes == 0
