"""Unit tests for weighted coverage and max-min diversity."""

import pytest

from repro.core.measures import WeightedCoverageMeasure, max_min_diversity
from repro.errors import ConfigurationError
from repro.graph.builder import GraphBuilder
from repro.groups import GroupSet, NodeGroup


@pytest.fixture()
def groups():
    return GroupSet(
        [
            NodeGroup("A", frozenset({0, 1, 2}), 1),
            NodeGroup("B", frozenset({3, 4}), 1),
        ]
    )


class TestWeightedCoverage:
    def test_unit_weights_equal_plain_measure(self, groups):
        from repro.core.measures import CoverageMeasure

        weighted = WeightedCoverageMeasure(groups, {})
        plain = CoverageMeasure(groups)
        for answer in ({0, 3}, {0, 1, 3}, set(), {0, 1, 2, 3, 4}):
            assert weighted.of(answer) == plain.of(answer)
        assert weighted.upper_bound == plain.upper_bound

    def test_heavier_group_penalized_more(self, groups):
        weighted = WeightedCoverageMeasure(groups, {"A": 3.0})
        # Exact coverage scores the (weighted) maximum.
        assert weighted.of({0, 3}) == weighted.upper_bound == 4.0
        # Overshooting A by one costs 3; overshooting B by one costs 1.
        assert weighted.of({0, 1, 3}) == 1.0
        assert weighted.of({0, 3, 4}) == 3.0

    def test_clamped_at_zero(self, groups):
        weighted = WeightedCoverageMeasure(groups, {"A": 10.0})
        assert weighted.of({0, 1, 2, 3}) == 0.0

    def test_validation(self, groups):
        with pytest.raises(ConfigurationError):
            WeightedCoverageMeasure(groups, {"ghost": 1.0})
        with pytest.raises(ConfigurationError):
            WeightedCoverageMeasure(groups, {"A": -1.0})

    def test_feasibility_unchanged(self, groups):
        weighted = WeightedCoverageMeasure(groups, {"A": 5.0})
        assert weighted.is_feasible({0, 3})
        assert not weighted.is_feasible({0})

    def test_drives_generation(self, talent_config):
        """Injectable into the evaluator via a custom coverage measure."""
        from repro.core.evaluator import InstanceEvaluator

        evaluator = InstanceEvaluator(talent_config)
        evaluator.coverage = WeightedCoverageMeasure(
            talent_config.groups, {"F": 2.0}
        )
        from repro.core.lattice import InstanceLattice

        root = InstanceLattice(talent_config).root()
        evaluated = evaluator.evaluate(root)
        # Root matches 2M+2F with c=1 each: penalty = 1·1 + 2·1 = 3 → f=0.
        assert evaluated.coverage == 0.0


class TestMaxMinDiversity:
    @pytest.fixture()
    def graph(self):
        b = GraphBuilder()
        b.node("m", x=0.0)
        b.node("m", x=5.0)
        b.node("m", x=10.0)
        b.node("m", x=10.0)  # Duplicate of node 2.
        return b.build()

    def test_min_pairwise(self, graph):
        # Distances (range 10): {0,2} → 1.0; {0,1,2} → 0.5.
        assert max_min_diversity(graph, "m", {0, 2}) == pytest.approx(1.0)
        assert max_min_diversity(graph, "m", {0, 1, 2}) == pytest.approx(0.5)

    def test_duplicates_zero(self, graph):
        assert max_min_diversity(graph, "m", {2, 3}) == 0.0

    def test_not_monotone_under_growth(self, graph):
        """The documented reason it cannot drive lattice pruning."""
        small = max_min_diversity(graph, "m", {0, 2})
        larger = max_min_diversity(graph, "m", {0, 1, 2})
        assert larger < small

    def test_small_sets(self, graph):
        assert max_min_diversity(graph, "m", set()) == 0.0
        assert max_min_diversity(graph, "m", {0}) == 0.0
