"""Unit tests for intersectional group construction."""

import pytest

from repro.errors import GroupError
from repro.graph.builder import GraphBuilder
from repro.groups.intersectional import attribute_axis, bucketize, intersect_attributes


@pytest.fixture(scope="module")
def graph():
    b = GraphBuilder()
    # (gender, yearsOfExp): F/2, F/10, F/20, M/3, M/12, M/25, plus one
    # person with no experience attribute.
    for gender, years in [("F", 2), ("F", 10), ("F", 20), ("M", 3), ("M", 12), ("M", 25)]:
        b.node("person", gender=gender, yearsOfExp=years)
    b.node("person", gender="M")
    b.node("org", employees=10)
    return b.build()


BANDS = [("junior", 5), ("senior", float("inf"))]


class TestBucketize:
    def test_banding(self, graph):
        bands = bucketize(graph, "person", "yearsOfExp", BANDS)
        assert bands[0] == "junior"  # F/2.
        assert bands[1] == "senior"  # F/10.
        assert bands[3] == "junior"  # M/3.

    def test_missing_attribute_excluded(self, graph):
        bands = bucketize(graph, "person", "yearsOfExp", BANDS)
        assert 6 not in bands  # The attribute-less person.

    def test_validation(self, graph):
        with pytest.raises(GroupError):
            bucketize(graph, "person", "yearsOfExp", [])
        with pytest.raises(GroupError):
            bucketize(graph, "person", "yearsOfExp", [("a", 10), ("b", 5)])

    def test_strictly_below_semantics(self, graph):
        bands = bucketize(graph, "person", "yearsOfExp", [("low", 10), ("high", 99)])
        # F/10 is NOT strictly below 10 → high.
        assert bands[1] == "high"


class TestIntersectAttributes:
    def test_cross_product_groups(self, graph):
        gender = attribute_axis(graph, "person", "gender")
        seniority = bucketize(graph, "person", "yearsOfExp", BANDS)
        groups = intersect_attributes(
            graph,
            "person",
            [gender, seniority],
            coverage={
                ("F", "junior"): 1,
                ("F", "senior"): 1,
                ("M", "junior"): 1,
                ("M", "senior"): 1,
            },
        )
        assert len(groups) == 4
        assert len(groups["F×junior"]) == 1
        assert len(groups["F×senior"]) == 2
        assert len(groups["M×senior"]) == 2

    def test_disjointness_automatic(self, graph):
        gender = attribute_axis(graph, "person", "gender")
        seniority = bucketize(graph, "person", "yearsOfExp", BANDS)
        groups = intersect_attributes(
            graph, "person", [gender, seniority],
            coverage={("F", "junior"): 1, ("M", "junior"): 1},
        )
        all_members = [v for g in groups for v in g.members]
        assert len(all_members) == len(set(all_members))

    def test_unrequested_tuples_skipped(self, graph):
        gender = attribute_axis(graph, "person", "gender")
        groups = intersect_attributes(
            graph, "person", [gender], coverage={("F",): 2}
        )
        assert groups.names == ("F",)

    def test_overcoverage_rejected(self, graph):
        gender = attribute_axis(graph, "person", "gender")
        with pytest.raises(GroupError):
            intersect_attributes(
                graph, "person", [gender], coverage={("F",): 99}
            )

    def test_no_axes_rejected(self, graph):
        with pytest.raises(GroupError):
            intersect_attributes(graph, "person", [], coverage={})

    def test_usable_in_generation(self, graph):
        """Intersectional groups drive FairSQG like any other GroupSet."""
        from repro import EnumQGen, GenerationConfig, Op, QueryTemplate

        gender = attribute_axis(graph, "person", "gender")
        seniority = bucketize(graph, "person", "yearsOfExp", BANDS)
        groups = intersect_attributes(
            graph, "person", [gender, seniority],
            coverage={("F", "senior"): 1, ("M", "senior"): 1},
        )
        template = (
            QueryTemplate.builder("everyone")
            .node("u0", "person")
            .range_var("xl", "u0", "yearsOfExp", Op.GE)
            .output("u0")
            .build()
        )
        config = GenerationConfig(graph, template, groups, epsilon=0.3)
        result = EnumQGen(config).run()
        assert result.instances
        for point in result.instances:
            assert groups.is_feasible(point.matches)
