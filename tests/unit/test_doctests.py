"""Run the library's docstring examples as tests."""

import doctest
import importlib

import pytest

MODULES = [
    "repro.graph.attributed_graph",
    "repro.graph.builder",
    "repro.graph.active_domain",
    "repro.graph.sampling",
    "repro.query.template",
    "repro.query.predicates",
    "repro.query.instantiation",
    "repro.core.measures",
    "repro.core.pareto",
    "repro.core.update",
    "repro.core.distance",
    "repro.groups.groups",
    "repro.groups.fairness",
    "repro.datasets.synthetic",
    "repro.workload.template_gen",
    "repro.rpq.regex",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{module_name}: {result.failed} doctest failures"
