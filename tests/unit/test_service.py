"""Unit tests for the serving layer: caches, context, requests, admission."""

from __future__ import annotations

import json

import pytest

from repro.errors import ServiceError
from repro.matching.bitset import WorkloadLiteralPools
from repro.matching.delta import GraphDelta
from repro.obs.registry import MetricsRegistry
from repro.service import (
    BatchScheduler,
    GenerationRequest,
    GraphContext,
    load_requests_jsonl,
    request_from_dict,
    round_robin_admission,
)


class TestWorkloadLiteralPools:
    def test_lookup_miss_then_hit(self):
        metrics = MetricsRegistry()
        pools = WorkloadLiteralPools(metrics=metrics)
        key = ("person", "age", ">=", 30)
        assert pools.lookup(key) is None
        pools.store(key, 0b1011)
        assert pools.lookup(key) == 0b1011
        assert metrics.value("service.workload_pool.misses") == 1
        assert metrics.value("service.workload_pool.hits") == 1
        assert pools.hit_rate == 0.5

    def test_lru_eviction_order(self):
        metrics = MetricsRegistry()
        pools = WorkloadLiteralPools(metrics=metrics, max_entries=2)
        pools.store("a", 1)
        pools.store("b", 2)
        assert pools.lookup("a") == 1  # refresh "a"; "b" becomes LRU
        pools.store("c", 3)
        assert len(pools) == 2
        assert pools.lookup("b") is None  # evicted
        assert pools.lookup("a") == 1
        assert pools.lookup("c") == 3
        assert metrics.value("service.workload_pool.evictions") == 1

    def test_store_existing_key_refreshes_not_evicts(self):
        pools = WorkloadLiteralPools(max_entries=2)
        pools.store("a", 1)
        pools.store("b", 2)
        pools.store("a", 10)  # overwrite, no growth
        assert len(pools) == 2
        assert pools.lookup("a") == 10

    def test_clear(self):
        pools = WorkloadLiteralPools()
        pools.store("a", 1)
        pools.clear()
        assert len(pools) == 0
        assert pools.lookup("a") is None

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            WorkloadLiteralPools(max_entries=0)

    def test_unbounded(self):
        pools = WorkloadLiteralPools(max_entries=None)
        for i in range(100):
            pools.store(("k", i), i)
        assert len(pools) == 100
        assert pools.max_entries is None

    def test_hit_rate_zero_before_probes(self):
        assert WorkloadLiteralPools().hit_rate == 0.0


class TestGraphContext:
    def test_bind_wires_shared_tiers(self, talent_config):
        context = GraphContext(talent_config.graph)
        bound = context.bind(talent_config)
        assert bound.shared_indexes is context.indexes
        assert bound.shared_literal_pools is context.literal_pools
        assert bound.build_indexes() is context.indexes
        # The original config is untouched (bind returns a copy).
        assert talent_config.shared_indexes is None

    def test_bind_rejects_foreign_graph(self, talent_config, triangle_graph):
        context = GraphContext(triangle_graph)
        with pytest.raises(ServiceError):
            context.bind(talent_config)

    def test_invalidate_bumps_generation_and_rebuilds(self, talent_graph):
        context = GraphContext(talent_graph)
        indexes, pools = context.indexes, context.literal_pools
        pools.store("k", 1)
        context.invalidate()
        assert context.generation == 1
        assert context.indexes is not indexes
        assert context.literal_pools is not pools
        assert len(context.literal_pools) == 0
        assert context.metrics.value("service.context.invalidations") == 1

    def test_apply_delta_swaps_graph(self, talent_graph, talent_ids):
        context = GraphContext(talent_graph)
        delta = GraphDelta(
            insert_edges=((talent_ids["r2"], talent_ids["d4"], "recommend"),)
        )
        new_graph = context.apply_delta(delta)
        assert context.graph is new_graph
        assert new_graph is not talent_graph
        assert new_graph.has_edge(talent_ids["r2"], talent_ids["d4"], "recommend")
        assert context.generation == 1

    def test_configure_builds_bound_config(
        self, talent_graph, talent_template, talent_groups
    ):
        context = GraphContext(talent_graph)
        config = context.configure(
            talent_template, talent_groups, epsilon=0.2, max_domain_values=4
        )
        assert config.epsilon == 0.2
        assert config.shared_indexes is context.indexes

    def test_warm_is_idempotent(self, talent_graph):
        context = GraphContext(talent_graph, warm=True)
        context.warm()
        assert context.indexes.labels.nodes("person")


class TestGenerationRequest:
    def test_unknown_option_rejected(self, talent_template):
        with pytest.raises(ServiceError):
            GenerationRequest("r1", talent_template, options={"graph": None})

    def test_budget_none_when_unbounded(self, talent_template):
        assert GenerationRequest("r1", talent_template).budget() is None

    def test_budget_built_from_fields(self, talent_template):
        request = GenerationRequest(
            "r1", talent_template, deadline_seconds=0.5, max_instances=10
        )
        budget = request.budget()
        assert budget.deadline_seconds == 0.5
        assert budget.max_instances == 10

    def test_signature_ignores_caller_identity(self, talent_template):
        a = GenerationRequest("r1", talent_template, client="alice")
        b = GenerationRequest("r2", talent_template, client="bob")
        assert a.canonical_signature() == b.canonical_signature()

    def test_signature_distinguishes_work(self, talent_template):
        a = GenerationRequest("r", talent_template, epsilon=0.1)
        b = GenerationRequest("r", talent_template, epsilon=0.2)
        c = GenerationRequest("r", talent_template, algorithm="rfqgen")
        assert len({a.canonical_signature(), b.canonical_signature(),
                    c.canonical_signature()}) == 3


class TestRequestWireFormat:
    def test_unknown_key_rejected(self, talent_template):
        with pytest.raises(ServiceError):
            request_from_dict({"id": "r", "templte": {}}, talent_template)

    def test_default_template_fills_in(self, talent_template):
        request = request_from_dict({"id": "r"}, talent_template)
        assert request.template is talent_template

    def test_missing_template_without_default(self):
        with pytest.raises(ServiceError):
            request_from_dict({"id": "r"})

    def test_jsonl_roundtrip(self, tmp_path, talent_template):
        path = tmp_path / "batch.jsonl"
        path.write_text(
            "# comment line\n"
            "\n"
            + json.dumps({"id": "a", "epsilon": 0.1, "client": "x"})
            + "\n"
            + json.dumps({"id": "b", "deadline": 0.25, "max_instances": 5})
            + "\n"
        )
        requests = load_requests_jsonl(path, talent_template)
        assert [r.request_id for r in requests] == ["a", "b"]
        assert requests[0].epsilon == 0.1
        assert requests[1].budget().max_instances == 5

    def test_jsonl_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ServiceError):
            load_requests_jsonl(path)


class TestAdmission:
    def test_round_robin_interleaves_clients(self, talent_template):
        def req(i, client):
            return GenerationRequest(f"r{i}", talent_template, client=client)

        requests = [
            req(0, "bulk"), req(1, "bulk"), req(2, "bulk"), req(3, "bulk"),
            req(4, "small"), req(5, "other"),
        ]
        order = [r.request_id for r in round_robin_admission(requests)]
        # The small clients are admitted within round one despite arriving
        # after four bulk requests.
        assert order == ["r0", "r4", "r5", "r1", "r2", "r3"]

    def test_round_robin_preserves_within_client_order(self, talent_template):
        requests = [
            GenerationRequest(f"r{i}", talent_template, client="only")
            for i in range(5)
        ]
        assert round_robin_admission(requests) == requests


class TestBatchScheduler:
    def test_rejects_unknown_default(self, talent_graph, talent_groups):
        context = GraphContext(talent_graph)
        with pytest.raises(ServiceError):
            BatchScheduler(context, talent_groups, defaults={"nope": 1})

    def test_unknown_algorithm_fails_request_not_batch(
        self, talent_graph, talent_template, talent_groups
    ):
        context = GraphContext(talent_graph)
        scheduler = BatchScheduler(
            context, talent_groups, defaults={"max_domain_values": 4}
        )
        outcomes = scheduler.run(
            [
                GenerationRequest("bad", talent_template, algorithm="magic"),
                GenerationRequest("good", talent_template, epsilon=0.3),
            ]
        )
        assert [o.request.request_id for o in outcomes] == ["bad", "good"]
        assert not outcomes[0].ok and "unknown algorithm" in outcomes[0].error
        assert outcomes[1].ok
        assert context.metrics.value("service.failed") == 1
        assert context.metrics.value("service.completed") == 1
