"""Unit tests for candidate pruning and the backtracking matcher."""

import pytest

from repro.graph.indexes import GraphIndexes
from repro.matching import (
    SubgraphMatcher,
    initial_candidates,
    naive_match_set,
    nx_monomorphism_match_set,
    propagate,
)
from repro.query import Instantiation, Literal, Op, QueryInstance, QueryTemplate


def talent_instance(template, **bindings):
    return QueryInstance(Instantiation(template, bindings))


class TestInitialCandidates:
    def test_label_filtering(self, talent_graph, talent_template, talent_ids):
        indexes = GraphIndexes(talent_graph)
        q = talent_instance(talent_template, xl1=5, xl2=100, xe1=0)
        candidates = initial_candidates(indexes, q, None)
        directors = {talent_ids[d] for d in ("d1", "d2", "d3", "d4")}
        assert candidates["u0"] == directors

    def test_literal_filtering(self, talent_graph, talent_template, talent_ids):
        indexes = GraphIndexes(talent_graph)
        q = talent_instance(talent_template, xl1=12, xl2=100, xe1=0)
        candidates = initial_candidates(indexes, q, None)
        # Only r2 has yearsOfExp >= 12 among non-directors... r2 plus the
        # directors with yoe >= 12 (label pool is all persons).
        assert talent_ids["r1"] not in candidates["u1"]
        assert talent_ids["r2"] in candidates["u1"]

    def test_restrict_bounds_pool(self, talent_graph, talent_template, talent_ids):
        indexes = GraphIndexes(talent_graph)
        q = talent_instance(talent_template, xl1=5, xl2=100, xe1=0)
        restricted = initial_candidates(
            indexes, q, {"u0": {talent_ids["d1"], talent_ids["r1"]}}
        )
        # Restriction is re-filtered through the literals (r1 is no
        # director) and caps the pool.
        assert restricted["u0"] == {talent_ids["d1"]}


class TestPropagate:
    def test_prunes_unsupported(self, talent_graph, talent_template, talent_ids):
        indexes = GraphIndexes(talent_graph)
        q = talent_instance(talent_template, xl1=5, xl2=1000, xe1=0)
        candidates = initial_candidates(indexes, q, None)
        candidates, removed = propagate(talent_graph, q, candidates)
        # Only r2 works at the big org; only d2/d3 are recommended by r2.
        assert candidates["u1"] == {talent_ids["r2"]}
        assert candidates["u0"] == {talent_ids["d2"], talent_ids["d3"]}
        assert removed > 0

    def test_empty_propagates_everywhere(self, talent_graph, talent_template):
        indexes = GraphIndexes(talent_graph)
        q = talent_instance(talent_template, xl1=99, xl2=100, xe1=0)
        candidates = initial_candidates(indexes, q, None)
        candidates, _ = propagate(talent_graph, q, candidates)
        assert all(not pool for pool in candidates.values())


class TestMatcher:
    def test_relaxed_instance_matches_all_directors(
        self, talent_graph, talent_template, talent_ids
    ):
        matcher = SubgraphMatcher(talent_graph)
        q = talent_instance(talent_template, xl1=5, xl2=100, xe1=0)
        result = matcher.match(q)
        expected = {talent_ids[d] for d in ("d1", "d2", "d3", "d4")}
        assert result.matches == expected

    def test_refined_org_size(self, talent_graph, talent_template, talent_ids):
        matcher = SubgraphMatcher(talent_graph)
        q = talent_instance(talent_template, xl1=5, xl2=1000, xe1=0)
        assert matcher.match(q).matches == {talent_ids["d2"], talent_ids["d3"]}

    def test_refined_experience(self, talent_graph, talent_template, talent_ids):
        matcher = SubgraphMatcher(talent_graph)
        q = talent_instance(talent_template, xl1=12, xl2=100, xe1=0)
        assert matcher.match(q).matches == {talent_ids["d2"], talent_ids["d3"]}

    def test_edge_variable_adds_constraint(
        self, talent_graph, talent_template, talent_ids
    ):
        matcher = SubgraphMatcher(talent_graph)
        # u3 -recommend-> u0 is a second (non-injective) recommender; every
        # director with at least one recommender still matches.
        q = talent_instance(talent_template, xl1=5, xl2=100, xe1=1)
        expected = {talent_ids[d] for d in ("d1", "d2", "d3", "d4")}
        assert matcher.match(q).matches == expected

    def test_injective_mode_requires_distinct(self, talent_graph, talent_template, talent_ids):
        matcher = SubgraphMatcher(talent_graph, injective=True)
        q = talent_instance(talent_template, xl1=5, xl2=100, xe1=1)
        # Injective: u1 and u3 must be different recommenders; only d2 has
        # two distinct recommenders (r1 and r2).
        assert matcher.match(q).matches == {talent_ids["d2"]}

    def test_agrees_with_naive(self, talent_graph, talent_template):
        matcher = SubgraphMatcher(talent_graph)
        for xl1 in (5, 12):
            for xl2 in (100, 1000):
                for xe1 in (0, 1):
                    q = talent_instance(talent_template, xl1=xl1, xl2=xl2, xe1=xe1)
                    assert matcher.match(q).matches == naive_match_set(
                        talent_graph, q
                    ), (xl1, xl2, xe1)

    def test_injective_agrees_with_networkx(self, talent_graph, talent_template):
        matcher = SubgraphMatcher(talent_graph, injective=True)
        for xe1 in (0, 1):
            q = talent_instance(talent_template, xl1=5, xl2=100, xe1=xe1)
            assert matcher.match(q).matches == nx_monomorphism_match_set(
                talent_graph, q
            )

    def test_exists(self, talent_graph, talent_template):
        matcher = SubgraphMatcher(talent_graph)
        assert matcher.exists(talent_instance(talent_template, xl1=5, xl2=100, xe1=0))
        assert not matcher.exists(
            talent_instance(talent_template, xl1=99, xl2=100, xe1=0)
        )


class TestCyclicMatching:
    def test_triangle_pattern(self, triangle_graph):
        template = (
            QueryTemplate.builder("tri")
            .node("u0", "a")
            .node("u1", "a")
            .node("u2", "a")
            .fixed_edge("u0", "u1", "e")
            .fixed_edge("u1", "u2", "e")
            .fixed_edge("u2", "u0", "e")
            .output("u0")
            .build()
        )
        matcher = SubgraphMatcher(triangle_graph)
        q = QueryInstance(Instantiation(template))
        # Only the three triangle nodes close the cycle; node 3 does not.
        assert matcher.match(q).matches == {0, 1, 2}
        assert matcher.match(q).matches == naive_match_set(triangle_graph, q)

    def test_backtracking_counter_moves_on_cycles(self, triangle_graph):
        template = (
            QueryTemplate.builder("tri")
            .node("u0", "a")
            .node("u1", "a")
            .node("u2", "a")
            .fixed_edge("u0", "u1", "e")
            .fixed_edge("u1", "u2", "e")
            .fixed_edge("u2", "u0", "e")
            .output("u0")
            .build()
        )
        matcher = SubgraphMatcher(triangle_graph)
        result = matcher.match(QueryInstance(Instantiation(template)))
        assert result.backtrack_calls > 0

    def test_acyclic_skips_backtracking(self, talent_graph, talent_template):
        matcher = SubgraphMatcher(talent_graph)
        q = talent_instance(talent_template, xl1=5, xl2=100, xe1=0)
        assert matcher.match(q).backtrack_calls == 0


class TestSingleNodeQuery:
    def test_single_node(self, talent_graph, talent_ids):
        template = (
            QueryTemplate.builder("solo")
            .node("u0", "org")
            .range_var("xl", "u0", "employees", Op.GE)
            .output("u0")
            .build()
        )
        matcher = SubgraphMatcher(talent_graph)
        q = QueryInstance(Instantiation(template, {"xl": 500}))
        assert matcher.match(q).matches == {talent_ids["o_big"]}
