"""Unit tests for suggestion explanations and preference selection."""

import pytest

from repro.core.evaluator import InstanceEvaluator
from repro.core.explain import diff_instances, explain_suggestion
from repro.core.preferences import (
    chebyshev_score,
    rank_by_preference,
    select_by_preference,
    weighted_sum_score,
)
from repro.errors import ConfigurationError, QueryError
from repro.query import Instantiation, QueryInstance


def make(template, **bindings):
    return QueryInstance(Instantiation(template, bindings))


class TestDiffInstances:
    def test_no_change(self, talent_template):
        a = make(talent_template, xl1=5, xl2=100, xe1=0)
        b = make(talent_template, xl1=5, xl2=100, xe1=0)
        assert diff_instances(a, b) == []

    def test_tightened_range(self, talent_template):
        a = make(talent_template, xl1=5, xl2=100, xe1=0)
        b = make(talent_template, xl1=12, xl2=100, xe1=0)
        (change,) = diff_instances(a, b)
        assert change.variable == "xl1"
        assert change.direction == "refined"
        assert "tightened" in change.description

    def test_relaxed_range(self, talent_template):
        a = make(talent_template, xl1=5, xl2=1000, xe1=0)
        b = make(talent_template, xl1=5, xl2=100, xe1=0)
        (change,) = diff_instances(a, b)
        assert change.direction == "relaxed"
        assert "relaxed" in change.description
        assert "1000" in change.description and "100" in change.description

    def test_edge_changes(self, talent_template):
        a = make(talent_template, xl1=5, xl2=100, xe1=0)
        b = make(talent_template, xl1=5, xl2=100, xe1=1)
        (change,) = diff_instances(a, b)
        assert "added edge" in change.description
        (reverse,) = diff_instances(b, a)
        assert "removed edge" in reverse.description

    def test_added_and_dropped_condition(self, talent_template):
        a = make(talent_template, xl2=100, xe1=0)  # xl1 wildcard.
        b = make(talent_template, xl1=12, xl2=100, xe1=0)
        (change,) = diff_instances(a, b)
        assert "added condition" in change.description
        (reverse,) = diff_instances(b, a)
        assert "dropped condition" in reverse.description

    def test_cross_template_rejected(self, talent_template, triangle_graph):
        from repro.query import QueryTemplate

        other = (
            QueryTemplate.builder("o")
            .node("u0", "a")
            .node("u1", "a")
            .fixed_edge("u1", "u0", "e")
            .output("u0")
            .build()
        )
        with pytest.raises(QueryError):
            diff_instances(make(talent_template), QueryInstance(Instantiation(other)))


class TestExplainSuggestion:
    def test_narrative(self, talent_config, talent_template, talent_groups):
        evaluator = InstanceEvaluator(talent_config)
        baseline = evaluator.evaluate(make(talent_template, xl1=5, xl2=100, xe1=0))
        suggestion = evaluator.evaluate(make(talent_template, xl1=5, xl2=1000, xe1=0))
        text = explain_suggestion(baseline, suggestion, talent_groups)
        assert "suggested edits:" in text
        assert "answer size: 4 -> 2" in text
        assert "group coverage: M: 2 -> 1, F: 2 -> 1" in text
        assert "diversity δ" in text

    def test_identical(self, talent_config, talent_template):
        evaluator = InstanceEvaluator(talent_config)
        point = evaluator.evaluate(make(talent_template, xl1=5, xl2=100, xe1=0))
        text = explain_suggestion(point, point)
        assert "identical" in text


class Point:
    def __init__(self, delta, coverage):
        self.delta = delta
        self.coverage = coverage


class TestPreferences:
    def test_extremes(self):
        diverse = Point(10, 0)
        covered = Point(0, 10)
        both = [diverse, covered]
        assert select_by_preference(both, 0.0) is diverse
        assert select_by_preference(both, 1.0) is covered

    def test_balanced_prefers_knee(self):
        knee = Point(8, 8)
        points = [Point(10, 0), knee, Point(0, 10)]
        assert select_by_preference(points, 0.5) is knee
        assert select_by_preference(points, 0.5, method="weighted_sum") is knee

    def test_empty(self):
        assert select_by_preference([], 0.5) is None
        assert rank_by_preference([], 0.5) == []

    def test_rank_order(self):
        points = [Point(10, 0), Point(5, 5), Point(0, 10)]
        ranked = rank_by_preference(points, 0.0)
        assert [p.delta for p in ranked] == [10, 5, 0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            select_by_preference([Point(1, 1)], 2.0)
        with pytest.raises(ConfigurationError):
            select_by_preference([Point(1, 1)], 0.5, method="sorcery")

    def test_scores_monotone_in_objectives(self):
        better = Point(9, 9)
        worse = Point(5, 5)
        for scorer in (weighted_sum_score, chebyshev_score):
            assert scorer(better, 0.5, 10, 10) > scorer(worse, 0.5, 10, 10)
