"""Unit tests for graph deltas and localized match maintenance."""

import pytest

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.matching.delta import (
    GraphDelta,
    IncrementalMatchMaintainer,
    apply_delta,
    invert_delta,
    validate_delta,
)
from repro.query import Instantiation, Literal, Op, QueryInstance, QueryTemplate


@pytest.fixture()
def chain_graph():
    # a0 -> a1 -> a2 -> a3, all label 'a'.
    b = GraphBuilder()
    for i in range(4):
        b.node("a", x=i)
    for i in range(3):
        b.edge(i, i + 1, "e")
    return b.build()


def one_hop_instance():
    template = (
        QueryTemplate.builder("hop")
        .node("u0", "a")
        .node("u1", "a")
        .fixed_edge("u1", "u0", "e")
        .output("u0")
        .build()
    )
    return QueryInstance(Instantiation(template))


class TestGraphDelta:
    def test_touched_nodes(self):
        delta = GraphDelta(insert_edges=((0, 1, "e"),), delete_edges=((2, 3, "e"),))
        assert delta.touched_nodes == {0, 1, 2, 3}
        assert not delta.is_empty
        assert GraphDelta().is_empty

    def test_touched_nodes_includes_attribute_updates(self):
        delta = GraphDelta(set_attributes=((2, "x", 9),))
        assert delta.touched_nodes == {2}
        assert not delta.is_empty

    def test_touched_nodes_cached(self):
        delta = GraphDelta(insert_edges=((0, 1, "e"),))
        assert delta.touched_nodes is delta.touched_nodes


class TestApplyDelta:
    def test_insert_and_delete(self, chain_graph):
        delta = GraphDelta(
            insert_edges=((3, 0, "e"),), delete_edges=((0, 1, "e"),)
        )
        updated = apply_delta(chain_graph, delta)
        assert updated.has_edge(3, 0, "e")
        assert not updated.has_edge(0, 1, "e")
        assert chain_graph.has_edge(0, 1, "e")  # Original untouched.

    def test_delete_missing_edge_rejected(self, chain_graph):
        with pytest.raises(GraphError):
            apply_delta(chain_graph, GraphDelta(delete_edges=((0, 3, "e"),)))

    def test_insert_unknown_node_rejected(self, chain_graph):
        with pytest.raises(GraphError):
            apply_delta(chain_graph, GraphDelta(insert_edges=((0, 99, "e"),)))

    def test_attributes_preserved(self, chain_graph):
        updated = apply_delta(chain_graph, GraphDelta(insert_edges=((3, 0, "e"),)))
        assert updated.attribute(2, "x") == 2

    def test_attribute_update_last_wins(self, chain_graph):
        updated = apply_delta(
            chain_graph,
            GraphDelta(set_attributes=((1, "x", 7), (1, "x", 9))),
        )
        assert updated.attribute(1, "x") == 9
        assert chain_graph.attribute(1, "x") == 1  # Original untouched.

    def test_attribute_none_removes(self, chain_graph):
        updated = apply_delta(chain_graph, GraphDelta(set_attributes=((1, "x", None),)))
        assert updated.attribute(1, "x") is None

    def test_attribute_update_unknown_node_rejected(self, chain_graph):
        with pytest.raises(GraphError):
            apply_delta(chain_graph, GraphDelta(set_attributes=((99, "x", 1),)))

    def test_validate_passes_on_applicable_delta(self, chain_graph):
        validate_delta(
            chain_graph,
            GraphDelta(insert_edges=((3, 0, "e"),), delete_edges=((0, 1, "e"),)),
        )


class TestInvertDelta:
    def test_edge_round_trip(self, chain_graph):
        delta = GraphDelta(insert_edges=((3, 0, "e"),), delete_edges=((0, 1, "e"),))
        inverse = invert_delta(chain_graph, delta)
        restored = apply_delta(apply_delta(chain_graph, delta), inverse)
        assert restored.has_edge(0, 1, "e")
        assert not restored.has_edge(3, 0, "e")

    def test_attribute_inverse_restores_old_value(self, chain_graph):
        delta = GraphDelta(set_attributes=((1, "x", 7), (1, "y", 5)))
        inverse = invert_delta(chain_graph, delta)
        assert set(inverse.set_attributes) == {(1, "x", 1), (1, "y", None)}
        restored = apply_delta(apply_delta(chain_graph, delta), inverse)
        assert restored.attribute(1, "x") == 1
        assert restored.attribute(1, "y") is None

    def test_idempotent_insert_excluded_from_inverse(self, chain_graph):
        # Inserting an already-present edge is a no-op; the inverse must
        # not delete it.
        delta = GraphDelta(insert_edges=((0, 1, "e"),))
        inverse = invert_delta(chain_graph, delta)
        assert inverse.is_empty

    def test_net_noop_edge_drops_out(self, chain_graph):
        delta = GraphDelta(
            insert_edges=((0, 1, "e"),), delete_edges=((0, 1, "e"),)
        )
        inverse = invert_delta(chain_graph, delta)
        assert inverse.is_empty


class TestMaintainer:
    def test_initial_matches(self, chain_graph):
        maintainer = IncrementalMatchMaintainer(chain_graph, one_hop_instance())
        # Targets of any edge: a1, a2, a3.
        assert maintainer.matches == {1, 2, 3}

    def test_insert_grows_matches(self, chain_graph):
        maintainer = IncrementalMatchMaintainer(chain_graph, one_hop_instance())
        maintainer.apply(GraphDelta(insert_edges=((3, 0, "e"),)))
        assert maintainer.matches == {0, 1, 2, 3}

    def test_delete_shrinks_matches(self, chain_graph):
        maintainer = IncrementalMatchMaintainer(chain_graph, one_hop_instance())
        maintainer.apply(GraphDelta(delete_edges=((0, 1, "e"),)))
        assert maintainer.matches == {2, 3}

    def test_locality_limits_rechecks(self):
        # Two far-apart components; touching one must not re-verify the other.
        b = GraphBuilder()
        for i in range(8):
            b.node("a", x=i)
        b.edge(0, 1, "e")
        b.edge(6, 7, "e")
        graph = b.build()
        maintainer = IncrementalMatchMaintainer(graph, one_hop_instance())
        maintainer.apply(GraphDelta(insert_edges=((1, 2, "e"),)))
        # The ball around nodes 1, 2 (diameter 1) excludes 6 and 7.
        assert maintainer.last_rechecked <= 4
        assert maintainer.matches == {1, 2, 7}
