"""Unit tests for the quality indicators."""

import math

import pytest

from repro.core.indicators import (
    epsilon_indicator,
    hypervolume,
    normalized_epsilon_indicator,
    r_indicator,
)
from repro.errors import ConfigurationError


class Point:
    def __init__(self, delta, coverage):
        self.delta = delta
        self.coverage = coverage


class TestEpsilonIndicator:
    def test_exact_set_scores_zero(self):
        universe = [Point(1, 5), Point(3, 2)]
        assert epsilon_indicator(universe, universe) == 0.0

    def test_empty_universe_vacuous(self):
        assert epsilon_indicator([Point(1, 1)], []) == 0.0

    def test_empty_candidates_infinite(self):
        assert epsilon_indicator([], [Point(1, 1)]) == math.inf

    def test_factor_needed(self):
        # Candidate (2, 2) must stretch ×1.5 to cover (3, 2).
        assert epsilon_indicator([Point(2, 2)], [Point(3, 2)]) == pytest.approx(0.5)


class TestNormalizedEpsilonIndicator:
    def test_perfect_is_one(self):
        universe = [Point(1, 5), Point(3, 2)]
        assert normalized_epsilon_indicator(universe, universe, 0.1) == 1.0

    def test_clamped_to_zero(self):
        assert (
            normalized_epsilon_indicator([Point(1, 1)], [Point(100, 100)], 0.01) == 0.0
        )

    def test_partial(self):
        # ε_m = 0.5, ε = 1.0 → I = 0.5.
        value = normalized_epsilon_indicator([Point(2, 2)], [Point(3, 2)], 1.0)
        assert value == pytest.approx(0.5)

    def test_empty_candidates(self):
        assert normalized_epsilon_indicator([], [Point(1, 1)], 0.5) == 0.0

    def test_invalid_epsilon(self):
        with pytest.raises(ConfigurationError):
            normalized_epsilon_indicator([], [], 0.0)


class TestRIndicator:
    def test_balanced(self):
        points = [Point(10, 0), Point(0, 20)]
        value = r_indicator(points, 0.5, delta_max=10, coverage_max=20)
        # δ*=1, f*=1 → (0.5 + 0.5)/2 = 0.5.
        assert value == pytest.approx(0.5)

    def test_preference_weighting(self):
        points = [Point(10, 0)]
        favors_coverage = r_indicator(points, 0.9, 10, 20)
        favors_diversity = r_indicator(points, 0.1, 10, 20)
        assert favors_diversity > favors_coverage

    def test_empty_set(self):
        assert r_indicator([], 0.5, 1, 1) == 0.0

    def test_invalid_lambda(self):
        with pytest.raises(ConfigurationError):
            r_indicator([Point(1, 1)], 1.5, 1, 1)

    def test_zero_normalizers(self):
        assert r_indicator([Point(1, 1)], 0.5, 0, 0) == 0.0


class TestHypervolume:
    def test_full_square(self):
        assert hypervolume([Point(10, 20)], 10, 20) == pytest.approx(1.0)

    def test_staircase(self):
        points = [Point(10, 10), Point(5, 20)]
        # Normalized: (1, 0.5) and (0.5, 1): area = 1*0.5 + 0.5*0.5 = 0.75.
        assert hypervolume(points, 10, 20) == pytest.approx(0.75)

    def test_dominated_point_adds_nothing(self):
        base = hypervolume([Point(10, 20)], 10, 20)
        extra = hypervolume([Point(10, 20), Point(5, 5)], 10, 20)
        assert base == pytest.approx(extra)

    def test_empty(self):
        assert hypervolume([], 10, 20) == 0.0
