"""Unit tests for bench settings/reporting/harness and result containers."""

import pytest

from repro.bench.harness import ExperimentContext, make_config
from repro.bench.reporting import format_table, save_table
from repro.bench.settings import BenchSettings, bench_settings
from repro.core.result import GenerationResult, RunStats, timed
from repro.graph.statistics import label_histogram


class TestBenchSettings:
    def test_defaults(self, monkeypatch):
        for var in ("REPRO_BENCH_SCALE", "REPRO_BENCH_C", "REPRO_BENCH_DOMAIN",
                    "REPRO_BENCH_EPSILON"):
            monkeypatch.delenv(var, raising=False)
        settings = bench_settings()
        assert settings.scale == 0.15
        assert settings.coverage_total == 16
        assert settings.max_domain_values == 5
        assert settings.epsilon == 0.01

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        monkeypatch.setenv("REPRO_BENCH_C", "32")
        settings = bench_settings()
        assert settings.scale == 0.5
        assert settings.coverage_total == 32

    def test_paper_mapping_mentions_scale(self):
        settings = BenchSettings(0.2, 10, 4, 0.05)
        assert "scale=0.2" in settings.paper_mapping


class TestReporting:
    def test_format_basic(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows, "title")
        lines = text.splitlines()
        assert lines[0] == "title"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_empty(self):
        assert "(no rows)" in format_table([], "t")

    def test_float_rendering(self):
        text = format_table([{"v": 0.5}, {"v": 0.0}])
        assert "0.5" in text
        # Zero renders compactly, not as 0.0000.
        assert "0.0000" not in text

    def test_save_table(self, tmp_path, capsys):
        path = tmp_path / "out.txt"
        save_table([{"a": 1}], path, "t", extra="note")
        content = path.read_text()
        assert "t" in content and "note" in content
        assert "a" in capsys.readouterr().out


class TestHarness:
    def test_bundle_cached(self):
        ctx = ExperimentContext(BenchSettings(0.05, 4, 3, 0.1))
        a = ctx.bundle("lki")
        b = ctx.bundle("lki")
        assert a is b

    def test_universe_cached(self):
        ctx = ExperimentContext(BenchSettings(0.05, 4, 3, 0.1))
        bundle = ctx.bundle("lki")
        config = make_config(bundle, ctx.settings)
        first = ctx.universe(config)
        second = ctx.universe(config)
        assert first is second

    def test_make_config_overrides(self):
        ctx = ExperimentContext(BenchSettings(0.05, 4, 3, 0.1))
        bundle = ctx.bundle("dbp")
        config = make_config(bundle, ctx.settings, epsilon=0.7, max_domain_values=2)
        assert config.epsilon == 0.7
        assert config.max_domain_values == 2


class TestResultContainers:
    def test_run_stats_row(self):
        stats = RunStats(generated=5, verified=4, feasible=2, elapsed_seconds=0.5)
        row = stats.as_row()
        assert row["generated"] == 5 and row["time (s)"] == 0.5

    def test_timed(self):
        stats = RunStats()
        with timed(stats):
            sum(range(1000))
        assert stats.elapsed_seconds > 0

    def test_generation_result_helpers(self):
        class P:
            def __init__(self, d, c):
                self.delta, self.coverage = d, c

            @property
            def objectives(self):
                return (self.delta, self.coverage)

        result = GenerationResult("x", [P(1, 5), P(3, 2)], 0.1)
        assert len(result) == 2
        assert result.best_by_diversity().delta == 3
        assert result.best_by_coverage().coverage == 5
        assert result.objectives() == [(1, 5), (3, 2)]

    def test_empty_result_helpers(self):
        result = GenerationResult("x", [], 0.1)
        assert result.best_by_diversity() is None
        assert result.best_by_coverage() is None


class TestLabelHistogram:
    def test_sorted_by_frequency(self, talent_graph):
        histogram = label_histogram(talent_graph)
        assert histogram[0][0] == "person"
        assert dict(histogram) == {"person": 6, "org": 2}
