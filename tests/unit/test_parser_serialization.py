"""Unit tests for the template DSL parser and JSON serialization."""

import pytest

from repro.errors import QueryError
from repro.query import Instantiation, Op, QueryInstance
from repro.query.parser import format_template, parse_template
from repro.query.serialization import (
    instantiation_from_dict,
    instantiation_to_dict,
    load_template,
    load_workload,
    save_template,
    save_workload,
    template_from_dict,
    template_to_dict,
)

DSL = """
# The paper's talent-search template.
template talent
node u0: person [title = "director"]
node u1: person
node u2: org
edge u1 -recommend-> u0
edge u1 -worksAt-> u2
edge? xe1: u0 -knows-> u1
var xl1: u1.yearsOfExp >= ?
var xl2: u2.employees <= ?
output u0
"""


class TestParser:
    def test_parse_structure(self):
        t = parse_template(DSL)
        assert t.name == "talent"
        assert set(t.nodes) == {"u0", "u1", "u2"}
        assert t.output_node == "u0"
        assert len(t.fixed_edges) == 2
        assert t.num_edge_variables == 1
        assert t.num_range_variables == 2

    def test_parse_literal(self):
        t = parse_template(DSL)
        (literal,) = t.node("u0").literals
        assert literal.attribute == "title"
        assert literal.op is Op.EQ
        assert literal.constant == "director"

    def test_parse_operators(self):
        t = parse_template(DSL)
        assert t.variable("xl1").op is Op.GE
        assert t.variable("xl2").op is Op.LE

    def test_numeric_literals(self):
        t = parse_template(
            "template n\nnode u0: a [x >= 3, y = 2.5]\noutput u0\n"
        )
        literals = t.node("u0").literals
        assert literals[0].constant == 3
        assert literals[1].constant == 2.5

    def test_roundtrip_through_format(self):
        t = parse_template(DSL)
        again = parse_template(format_template(t))
        assert template_to_dict(t) == template_to_dict(again)

    @pytest.mark.parametrize(
        "bad",
        [
            "",  # Empty.
            "template t\nnode u0: a\n",  # No output.
            "template t\nnode u0: a\nwat u0\noutput u0",  # Unknown decl.
            "template t\nnode u0: a [x ~ 3]\noutput u0",  # Bad literal op.
            "template t\nnode u0: a [x = banana]\noutput u0",  # Bad value.
            "template t\nnode u0: a\noutput u0 extra",  # Bad output.
        ],
    )
    def test_rejects_bad_input(self, bad):
        with pytest.raises(QueryError):
            parse_template(bad)


class TestTemplateSerialization:
    def test_dict_roundtrip(self, talent_template):
        data = template_to_dict(talent_template)
        rebuilt = template_from_dict(data)
        assert template_to_dict(rebuilt) == data

    def test_file_roundtrip(self, talent_template, tmp_path):
        path = tmp_path / "t.json"
        save_template(talent_template, path)
        rebuilt = load_template(path)
        assert rebuilt.variable_names() == talent_template.variable_names()
        assert rebuilt.output_node == talent_template.output_node

    def test_missing_key_raises(self):
        with pytest.raises(QueryError):
            template_from_dict({"name": "x"})


class TestInstantiationSerialization:
    def test_roundtrip(self, talent_template):
        inst = Instantiation(talent_template, {"xl1": 10, "xe1": 1})
        data = instantiation_to_dict(inst)
        rebuilt = instantiation_from_dict(data, talent_template)
        assert rebuilt == inst

    def test_template_mismatch(self, talent_template):
        data = {"template": "someone-else", "bindings": {}}
        with pytest.raises(QueryError):
            instantiation_from_dict(data, talent_template)


class TestWorkloadSerialization:
    def test_roundtrip(self, talent_template, tmp_path):
        instances = [
            QueryInstance(Instantiation(talent_template, {"xl1": v, "xl2": 100, "xe1": 0}))
            for v in (5, 12)
        ]
        path = tmp_path / "w.json"
        save_workload(instances, path)
        loaded = load_workload(path)
        assert [i.instantiation.key for i in loaded] == [
            i.instantiation.key for i in instances
        ]

    def test_empty_workload(self, tmp_path):
        path = tmp_path / "empty.json"
        save_workload([], path)
        assert load_workload(path) == []

    def test_mixed_templates_rejected(self, talent_template, tmp_path):
        other = parse_template(DSL)
        instances = [
            QueryInstance(Instantiation(talent_template)),
            QueryInstance(Instantiation(other)),
        ]
        with pytest.raises(QueryError):
            save_workload(instances, tmp_path / "bad.json")
