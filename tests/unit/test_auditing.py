"""Unit tests for fairness audits."""

import pytest

from repro.groups import GroupSet, NodeGroup
from repro.groups.auditing import audit_answer, compare_audits


@pytest.fixture()
def groups():
    return GroupSet(
        [
            NodeGroup("M", frozenset(range(0, 10)), 2),
            NodeGroup("F", frozenset(range(10, 18)), 2),
        ]
    )


class TestAuditAnswer:
    def test_balanced_answer(self, groups):
        audit = audit_answer({0, 1, 10, 11}, groups)
        assert audit.feasible
        assert audit.coverage_error == 0
        assert audit.disparate_impact == 1.0
        assert audit.passes_eighty_percent_rule
        # Shares of group: 2/10 = 0.2 (M) vs 2/8 = 0.25 (F) → gap 0.05.
        assert audit.equal_opportunity_gap == pytest.approx(0.05)

    def test_skewed_answer(self, groups):
        audit = audit_answer({0, 1, 2, 3, 10}, groups)
        assert not audit.passes_eighty_percent_rule
        assert audit.disparate_impact == pytest.approx(0.25)
        assert audit.entry("M").overshoot == 2
        assert audit.entry("F").shortfall == 1
        assert not audit.feasible

    def test_ungrouped_nodes_counted_in_answer_only(self, groups):
        audit = audit_answer({0, 1, 10, 11, 99}, groups)
        assert audit.answer_size == 5
        assert audit.grouped_size == 4

    def test_shares(self, groups):
        audit = audit_answer({0, 1, 10, 11}, groups)
        m = audit.entry("M")
        assert m.share_of_answer == pytest.approx(0.5)
        assert m.share_of_group == pytest.approx(0.2)

    def test_empty_answer(self, groups):
        audit = audit_answer(set(), groups)
        assert audit.answer_size == 0
        assert not audit.feasible
        assert audit.coverage_error == 4
        assert audit.disparate_impact == 1.0  # Vacuous parity.

    def test_unknown_group_lookup(self, groups):
        audit = audit_answer({0}, groups)
        with pytest.raises(KeyError):
            audit.entry("X")

    def test_as_rows(self, groups):
        rows = audit_answer({0, 1, 10}, groups).as_rows()
        assert {row["group"] for row in rows} == {"M", "F"}
        for row in rows:
            assert set(row) >= {"covered", "shortfall", "overshoot"}

    def test_summary_mentions_verdict(self, groups):
        assert "feasible" in audit_answer({0, 1, 10, 11}, groups).summary()
        assert "INFEASIBLE" in audit_answer({0}, groups).summary()


class TestCompareAudits:
    def test_movement_lines(self, groups):
        before = audit_answer({0, 1, 2, 3, 10}, groups)
        after = audit_answer({0, 1, 10, 11}, groups)
        lines = compare_audits(before, after)
        assert any("disparate impact: 0.25 -> 1.00" in l for l in lines)
        assert any("coverage error" in l for l in lines)
