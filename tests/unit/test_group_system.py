"""Unit tests for the generalized group system (repro.groups.system)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, GroupError
from repro.groups import (
    AGGREGATES,
    GroupRule,
    GroupSet,
    GroupSystem,
    NodeGroup,
    canonical_spec,
    rules_from_spec,
    system_from_dict,
    system_from_rules,
    validate_system_spec,
)
from repro.graph.builder import GraphBuilder
from repro.matching.delta import GraphDelta
from repro.obs.registry import MetricsRegistry
from repro.workload.scenarios import ScenarioGenerator, multi_attribute_scenarios


def overlapping_system(aggregate="l1", weights=None):
    # senior ∩ female = {2, 3}: genuinely overlapping.
    senior = NodeGroup("senior", frozenset({1, 2, 3}), 2)
    female = NodeGroup("F", frozenset({2, 3, 4}), 1, relax=1)
    return GroupSystem([senior, female], aggregate=aggregate, weights=weights)


class TestNodeGroup:
    def test_required_applies_relax(self):
        group = NodeGroup("g", frozenset({1, 2, 3}), 3, relax=1)
        assert group.required == 2

    def test_required_clamps_at_zero(self):
        group = NodeGroup("g", frozenset({1, 2}), 1, relax=5)
        assert group.required == 0

    def test_negative_relax_rejected(self):
        with pytest.raises(GroupError, match="relax must be non-negative"):
            NodeGroup("g", frozenset({1}), 1, relax=-1)

    def test_oversized_coverage_rejected(self):
        with pytest.raises(GroupError, match="exceeds size"):
            NodeGroup("g", frozenset({1, 2}), 3)

    def test_overlap_accepts_sets_and_iterables(self):
        group = NodeGroup("g", frozenset({1, 2, 3}), 1)
        assert group.overlap({2, 3, 9}) == 2
        assert group.overlap([2, 3, 9]) == 2
        assert group.overlap(iter((2, 3, 9))) == 2


class TestGroupSystemConstruction:
    def test_empty_rejected(self):
        with pytest.raises(GroupError, match="at least one group"):
            GroupSystem([])

    def test_duplicate_names_rejected(self):
        g = NodeGroup("x", frozenset({1}), 1)
        with pytest.raises(GroupError, match="duplicate group names"):
            GroupSystem([g, NodeGroup("x", frozenset({2}), 1)])

    def test_unknown_aggregate_rejected(self):
        g = NodeGroup("x", frozenset({1}), 1)
        with pytest.raises(GroupError, match="unknown aggregate"):
            GroupSystem([g], aggregate="l2")

    def test_weights_require_weighted_aggregate(self):
        g = NodeGroup("x", frozenset({1}), 1)
        with pytest.raises(GroupError, match="only meaningful"):
            GroupSystem([g], aggregate="l1", weights={"x": 2.0})

    def test_weight_for_unknown_group_rejected(self):
        g = NodeGroup("x", frozenset({1}), 1)
        with pytest.raises(GroupError, match="unknown group 'y'"):
            GroupSystem([g], aggregate="weighted", weights={"y": 2.0})

    def test_negative_weight_rejected(self):
        g = NodeGroup("x", frozenset({1}), 1)
        with pytest.raises(GroupError, match="negative weight"):
            GroupSystem([g], aggregate="weighted", weights={"x": -1.0})

    def test_missing_weights_default_to_one(self):
        system = overlapping_system("weighted", weights={"F": 3.0})
        assert system.weights == {"senior": 1.0, "F": 3.0}


class TestMembership:
    def test_groups_of_overlapping_node(self):
        system = overlapping_system()
        assert system.groups_of(2) == ("senior", "F")
        assert system.groups_of(1) == ("senior",)
        assert system.groups_of(4) == ("F",)
        assert system.groups_of(99) == ()

    def test_max_memberships_and_disjointness(self):
        system = overlapping_system()
        assert system.max_memberships == 2
        assert not system.is_disjoint
        disjoint = GroupSystem(
            [NodeGroup("a", frozenset({1}), 1), NodeGroup("b", frozenset({2}), 1)]
        )
        assert disjoint.max_memberships == 1
        assert disjoint.is_disjoint

    def test_getitem_and_names(self):
        system = overlapping_system()
        assert system.names == ("senior", "F")
        assert system["F"].relax == 1
        with pytest.raises(GroupError, match="unknown group"):
            system["nope"]

    def test_overlap_counts_equals_overlaps(self):
        system = overlapping_system()
        for answer in ({1, 2}, {2, 3, 4}, set(), {99}):
            assert system.overlap_counts(answer) == system.overlaps(answer)


class TestAggregates:
    # Answer {1, 2}: senior overlap 2 (dev 0), F overlap 1 (dev 0).
    # Answer {4}: senior overlap 0 (dev 2), F overlap 1 (dev 0).
    # Answer set(): devs are (2, 1).

    def test_l1_error(self):
        system = overlapping_system("l1")
        assert system.coverage_error({1, 2}) == 0
        assert system.coverage_error({4}) == 2
        assert system.coverage_error(set()) == 3
        assert isinstance(system.coverage_error(set()), int)

    def test_max_error(self):
        system = overlapping_system("max")
        assert system.coverage_error({1, 2}) == 0
        assert system.coverage_error({4}) == 2
        assert system.coverage_error(set()) == 2

    def test_weighted_error(self):
        system = overlapping_system("weighted", weights={"F": 3.0})
        assert system.coverage_error({4}) == pytest.approx(2.0)
        assert system.coverage_error(set()) == pytest.approx(2 + 3.0)

    def test_error_of_overlaps_matches_coverage_error(self):
        for aggregate in AGGREGATES:
            weights = {"F": 2.0} if aggregate == "weighted" else None
            system = overlapping_system(aggregate, weights=weights)
            for answer in ({1, 2}, {4}, set(), {1, 2, 3, 4}):
                assert system.error_of_overlaps(
                    system.overlaps(answer)
                ) == system.coverage_error(answer)

    def test_quality_bound_per_aggregate(self):
        assert overlapping_system("l1").quality_bound == 3
        assert overlapping_system("max").quality_bound == 2
        weighted = overlapping_system("weighted", weights={"F": 3.0})
        assert weighted.quality_bound == pytest.approx(2 + 3.0)

    def test_total_coverage_is_l1_bound(self):
        system = overlapping_system()
        assert system.total_coverage == 3
        assert system.constraints() == {"senior": 2, "F": 1}


class TestFeasibility:
    def test_relax_softens_the_bound(self):
        system = overlapping_system()
        # F needs ≥ 0 members (c=1, relax=1); senior needs ≥ 2.
        assert system.is_feasible({1, 2})
        assert system.is_feasible({2, 3})
        assert not system.is_feasible({1})

    def test_feasible_overlaps_agrees(self):
        system = overlapping_system()
        for answer in ({1, 2}, {1}, {2, 3, 4}, set()):
            assert system.feasible_overlaps(
                system.overlaps(answer)
            ) == system.is_feasible(answer)

    def test_with_constraints_keeps_aggregate_and_relax(self):
        system = overlapping_system("max")
        bumped = system.with_constraints({"senior": 3})
        assert bumped["senior"].coverage == 3
        assert bumped["F"].coverage == 1
        assert bumped["F"].relax == 1
        assert bumped.aggregate == "max"


class TestGroupRule:
    def test_scalar_equality(self):
        rule = GroupRule("F", where={"gender": "F"}, coverage=1)
        assert rule.matches("person", {"gender": "F"})
        assert not rule.matches("person", {"gender": "M"})
        assert not rule.matches("person", {})

    def test_membership_list(self):
        rule = GroupRule("lead", where={"title": ["director", "vp"]}, coverage=1)
        assert rule.matches("person", {"title": "vp"})
        assert not rule.matches("person", {"title": "analyst"})

    def test_label_gate(self):
        rule = GroupRule("F", where={"gender": "F"}, coverage=1, label="person")
        assert rule.matches("person", {"gender": "F"})
        assert not rule.matches("org", {"gender": "F"})

    def test_conjunction(self):
        rule = GroupRule(
            "F&CS", where={"gender": "F", "major": "CS"}, coverage=1
        )
        assert rule.matches("person", {"gender": "F", "major": "CS"})
        assert not rule.matches("person", {"gender": "F", "major": "Business"})

    def test_empty_where_rejected(self):
        with pytest.raises(GroupError, match="empty where-predicate"):
            GroupRule("x", where={}, coverage=1)

    def test_negative_weight_rejected(self):
        with pytest.raises(GroupError, match="negative weight"):
            GroupRule("x", where={"a": 1}, coverage=1, weight=-0.5)


class TestSystemFromRules:
    # talent_graph persons/directors: 2 r1(M,CS) 3 r2(F,Business)
    # 4 d1(M,CS) 5 d2(F,Business) 6 d3(M,CS) 7 d4(F,Design)

    def test_one_scan_materialization(self, talent_graph):
        system = system_from_rules(
            talent_graph,
            [
                GroupRule("F", where={"gender": "F"}, coverage=2),
                GroupRule("CS", where={"major": "CS"}, coverage=2),
                GroupRule(
                    "M&CS", where={"gender": "M", "major": "CS"}, coverage=1
                ),
            ],
        )
        assert system["F"].members == frozenset({3, 5, 7})
        assert system["CS"].members == frozenset({2, 4, 6})
        assert system["M&CS"].members == frozenset({2, 4, 6})
        assert not system.is_disjoint
        assert system.groups_of(4) == ("CS", "M&CS")

    def test_label_scoping(self, talent_graph):
        # "bigco" matches both ways; r1 (a person) only without the gate.
        system = system_from_rules(
            talent_graph,
            [GroupRule("named", where={"name": ["bigco", "r1"]}, coverage=1,
                       label="org")],
        )
        assert system["named"].members == frozenset({1})

    def test_oversized_coverage_raises_without_clamp(self, talent_graph):
        rule = GroupRule("F", where={"gender": "F"}, coverage=50)
        with pytest.raises(GroupError, match="exceeds size"):
            system_from_rules(talent_graph, [rule])

    def test_clamp_lowers_to_population(self, talent_graph):
        rule = GroupRule("F", where={"gender": "F"}, coverage=50)
        system = system_from_rules(talent_graph, [rule], clamp=True)
        assert system["F"].coverage == 3

    def test_empty_rules_rejected(self, talent_graph):
        with pytest.raises(GroupError, match="at least one group rule"):
            system_from_rules(talent_graph, [])

    def test_weighted_aggregate_collects_rule_weights(self, talent_graph):
        system = system_from_rules(
            talent_graph,
            [
                GroupRule("F", where={"gender": "F"}, coverage=1, weight=2.0),
                GroupRule("CS", where={"major": "CS"}, coverage=1),
            ],
            aggregate="weighted",
        )
        assert system.weights == {"F": 2.0, "CS": 1.0}

    def test_metrics_counters(self, talent_graph):
        registry = MetricsRegistry()
        system_from_rules(
            talent_graph,
            [
                GroupRule("F", where={"gender": "F"}, coverage=1),
                GroupRule("F&Biz", where={"gender": "F", "major": "Business"},
                          coverage=1),
            ],
            metrics=registry,
        )
        counters = registry.counters()
        assert counters["groups.systems_built"] == 1
        assert counters["groups.rules_evaluated"] == 2
        assert counters["groups.members_indexed"] == 3 + 2
        # r2 and d2 are F ∩ Business.
        assert counters["groups.multi_membership_nodes"] == 2

    def test_no_metrics_no_counters(self, talent_graph):
        registry = MetricsRegistry()
        system_from_rules(
            talent_graph,
            [GroupRule("F", where={"gender": "F"}, coverage=1)],
        )
        assert not any(
            name.startswith("groups.") for name in registry.counters()
        )


def _churn_graph():
    """Mutable twin of ``talent_graph``'s persons (that fixture is
    session-scoped; membership repair mutates attributes in place)."""
    b = GraphBuilder("repair-toy")
    b.node("person", gender="M", major="CS")       # 0
    b.node("person", gender="F", major="Business")  # 1
    b.node("person", gender="M", major="CS")       # 2
    b.node("person", gender="F", major="Design")   # 3
    return b.build()


REPAIR_RULES = [
    GroupRule("M", {"gender": "M"}, 1, label="person"),
    GroupRule("F", {"gender": "F"}, 1, label="person"),
    GroupRule("tech", {"major": ("CS", "Design")}, 1, label="person"),
]


def _churn(graph, *changes):
    """Apply attribute changes in place; return the matching delta."""
    for node, name, value in changes:
        graph._set_attribute_in_place(node, name, value)
    return GraphDelta(set_attributes=tuple(changes))


class TestRepairMembership:
    def test_static_system_returns_empty_diff(self):
        system = overlapping_system()
        diff = system.repair_membership(
            GraphDelta(set_attributes=((1, "gender", "F"),))
        )
        assert diff.is_empty
        assert not system.has_rules

    def test_moves_patch_index_and_members(self):
        graph = _churn_graph()
        system = system_from_rules(graph, REPAIR_RULES)
        delta = _churn(graph, (0, "gender", "F"))
        diff = system.repair_membership(delta)
        assert len(diff.moves) == 1
        move = diff.moves[0]
        assert (move.node, move.removed, move.added) == (0, ("M",), ("F",))
        assert system["M"].members == frozenset({2})
        assert system["F"].members == frozenset({0, 1, 3})
        assert system.groups_of(0) == ("F", "tech")
        assert not diff.coverage_changes

    def test_membership_neutral_delta_is_empty(self):
        graph = _churn_graph()
        system = system_from_rules(graph, REPAIR_RULES)
        # "name" feeds no rule predicate; node 1 was not in "tech" anyway.
        delta = _churn(graph, (0, "name", "alice"), (1, "major", "Law"))
        assert system.repair_membership(delta).is_empty

    def test_repaired_equals_cold_rebuild(self):
        graph = _churn_graph()
        system = system_from_rules(graph, REPAIR_RULES)
        delta = _churn(
            graph, (0, "gender", "F"), (1, "major", "CS"), (3, "major", None)
        )
        system.repair_membership(delta)
        rebuilt = system_from_rules(graph, REPAIR_RULES)
        for name in system.names:
            assert system[name].members == rebuilt[name].members
            assert system[name].coverage == rebuilt[name].coverage

    def test_clamp_records_coverage_changes(self):
        graph = _churn_graph()
        rule = GroupRule("M", {"gender": "M"}, 2, label="person")
        system = system_from_rules(graph, [rule], clamp=True)
        assert system["M"].coverage == 2
        delta = _churn(graph, (0, "gender", "F"))
        diff = system.repair_membership(delta)
        assert diff.coverage_changes == (("M", 2, 1),)
        assert system["M"].coverage == 1

    def test_shrink_below_coverage_raises_without_clamp(self):
        graph = _churn_graph()
        rule = GroupRule("M", {"gender": "M"}, 2, label="person")
        system = system_from_rules(graph, [rule])
        delta = _churn(graph, (0, "gender", "F"))
        with pytest.raises(GroupError, match="below the declared coverage"):
            system.repair_membership(delta)

    def test_metrics_counters(self):
        graph = _churn_graph()
        system = system_from_rules(graph, REPAIR_RULES)
        registry = MetricsRegistry()
        delta = _churn(graph, (0, "gender", "F"), (1, "gender", "M"))
        system.repair_membership(delta, metrics=registry)
        counters = registry.counters()
        assert counters["groups.membership_repairs"] == 1
        # 3 rules re-tested on each of the 2 touched nodes.
        assert counters["groups.rules_evaluated"] == 6

    def test_detached_system_needs_graph(self):
        graph = _churn_graph()
        system = system_from_rules(graph, REPAIR_RULES)
        system._graph = None
        delta = _churn(graph, (0, "gender", "F"))
        with pytest.raises(GroupError, match="needs a graph"):
            system.repair_membership(delta)
        diff = system.repair_membership(delta, graph=graph)
        assert diff.moves[0].node == 0


VALID_SPEC = {
    "aggregate": "max",
    "groups": [
        {"name": "F", "label": "person", "where": {"gender": "F"}, "coverage": 1},
        {
            "name": "lead",
            "where": {"title": ["director", "vp"]},
            "coverage": 2,
            "relax": 1,
            "weight": 2.0,
        },
    ],
}


class TestWireShape:
    def test_valid_spec_passes(self):
        validate_system_spec(VALID_SPEC)

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda s: "not a dict", "must be a JSON object"),
            (lambda s: {**s, "extra": 1}, "unknown key"),
            (lambda s: {**s, "aggregate": "l2"}, "unknown aggregate"),
            (lambda s: {"aggregate": "l1"}, "non-empty 'groups'"),
            (lambda s: {**s, "groups": []}, "non-empty 'groups'"),
            (lambda s: {**s, "groups": ["x"]}, "must be a JSON object"),
            (
                lambda s: {**s, "groups": [{**s["groups"][0], "bogus": 1}]},
                "unknown key",
            ),
            (
                lambda s: {**s, "groups": [{**s["groups"][0], "name": ""}]},
                "non-empty string 'name'",
            ),
            (
                lambda s: {**s, "groups": [s["groups"][0], s["groups"][0]]},
                "duplicate group name",
            ),
            (
                lambda s: {**s, "groups": [{**s["groups"][0], "where": {}}]},
                "non-empty 'where'",
            ),
            (
                lambda s: {**s, "groups": [{**s["groups"][0], "coverage": -1}]},
                "coverage must be an int",
            ),
            (
                lambda s: {**s, "groups": [{**s["groups"][0], "coverage": True}]},
                "coverage must be an int",
            ),
            (
                lambda s: {**s, "groups": [{**s["groups"][0], "relax": -2}]},
                "relax must be an int",
            ),
            (
                lambda s: {**s, "groups": [{**s["groups"][0], "weight": -1.0}]},
                "weight must be a number",
            ),
        ],
    )
    def test_malformed_specs_rejected(self, mutate, message):
        with pytest.raises(GroupError, match=message):
            validate_system_spec(mutate(VALID_SPEC))

    def test_rules_from_spec_round_trip(self):
        rules = rules_from_spec(VALID_SPEC)
        assert [r.name for r in rules] == ["F", "lead"]
        assert rules[0].label == "person"
        assert rules[1].label is None
        assert rules[1].relax == 1
        assert rules[1].weight == 2.0
        assert rules[1].where == {"title": ["director", "vp"]}

    def test_system_from_dict(self, talent_graph):
        spec = {
            "aggregate": "l1",
            "groups": [
                {"name": "F", "where": {"gender": "F"}, "coverage": 2},
                {"name": "CS", "where": {"major": "CS"}, "coverage": 9},
            ],
        }
        with pytest.raises(GroupError, match="exceeds size"):
            system_from_dict(spec, talent_graph)
        system = system_from_dict(spec, talent_graph, clamp=True)
        assert system["CS"].coverage == 3
        assert system["F"].members == frozenset({3, 5, 7})

    def test_canonical_spec_order_insensitive(self):
        a = {
            "aggregate": "l1",
            "groups": [
                {"name": "b", "where": {"x": 1, "y": [3, 2]}, "coverage": 1},
                {"name": "a", "where": {"z": "v"}, "coverage": 2, "weight": 2},
            ],
        }
        b = {
            "aggregate": "l1",
            "groups": [
                {"name": "a", "where": {"z": "v"}, "coverage": 2, "weight": 2.0},
                {"name": "b", "where": {"y": [2, 3], "x": 1}, "coverage": 1},
            ],
        }
        assert canonical_spec(a) == canonical_spec(b)

    def test_canonical_spec_distinguishes_semantics(self):
        base = {"groups": [{"name": "a", "where": {"x": 1}, "coverage": 1}]}
        other = {"groups": [{"name": "a", "where": {"x": 1}, "coverage": 2}]}
        assert canonical_spec(base) != canonical_spec(other)
        assert canonical_spec(base) != canonical_spec(
            {**base, "aggregate": "max"}
        )


class TestGroupSetCompat:
    def test_overlap_rejected(self):
        with pytest.raises(GroupError, match="overlaps a previous group"):
            GroupSet(
                [
                    NodeGroup("a", frozenset({1, 2}), 1),
                    NodeGroup("b", frozenset({2, 3}), 1),
                ]
            )

    def test_group_of_singleton(self, talent_groups):
        assert talent_groups.group_of(4) == "M"
        assert talent_groups.group_of(5) == "F"
        assert talent_groups.group_of(0) is None

    def test_is_a_group_system_with_l1(self, talent_groups):
        assert isinstance(talent_groups, GroupSystem)
        assert talent_groups.aggregate == "l1"
        assert talent_groups.is_disjoint

    def test_with_constraints_stays_a_group_set(self, talent_groups):
        bumped = talent_groups.with_constraints({"M": 2})
        assert isinstance(bumped, GroupSet)
        assert bumped["M"].coverage == 2


class TestScenarioGenerator:
    @pytest.fixture()
    def generator(self, talent_graph):
        return ScenarioGenerator(
            talent_graph, "person", ("gender", "major"), seed=7
        )

    def test_spec_index_is_pure(self, generator):
        specs = generator.specs(5)
        for i, spec in enumerate(specs):
            assert generator.spec(i) == spec

    def test_equal_seeds_replay(self, talent_graph):
        a = ScenarioGenerator(talent_graph, "person", ("gender", "major"), seed=3)
        b = ScenarioGenerator(talent_graph, "person", ("gender", "major"), seed=3)
        assert a.specs(6) == b.specs(6)
        c = ScenarioGenerator(talent_graph, "person", ("gender", "major"), seed=4)
        assert a.specs(6) != c.specs(6)

    def test_specs_validate_and_cycle_aggregates(self, generator):
        specs = generator.specs(6)
        for spec in specs:
            validate_system_spec(spec)
        assert [s["aggregate"] for s in specs] == list(AGGREGATES) * 2

    def test_systems_are_satisfiable_and_overlapping(self, generator, talent_graph):
        saw_overlap = False
        for system in generator.systems(6):
            for group in system:
                assert group.coverage <= len(group.members)
            saw_overlap = saw_overlap or not system.is_disjoint
        assert saw_overlap

    def test_validation_errors(self, talent_graph):
        with pytest.raises(ConfigurationError, match="at least one candidate"):
            ScenarioGenerator(talent_graph, "person", ())
        with pytest.raises(ConfigurationError, match="max_groups"):
            ScenarioGenerator(talent_graph, "person", ("gender",), max_groups=1)
        with pytest.raises(ConfigurationError, match="coverage_fraction"):
            ScenarioGenerator(
                talent_graph, "person", ("gender",), coverage_fraction=0.0
            )
        with pytest.raises(ConfigurationError, match="unknown aggregate"):
            ScenarioGenerator(
                talent_graph, "person", ("gender",), aggregates=("l1", "l2")
            )
        with pytest.raises(ConfigurationError, match="no candidate attribute"):
            ScenarioGenerator(talent_graph, "person", ("nonexistent",))

    def test_rare_values_never_grouped(self, talent_graph):
        # person majors: CS×3, Business×2, Design×1 — Design is too rare.
        gen = ScenarioGenerator(talent_graph, "person", ("major",), seed=0)
        for spec in gen.specs(4):
            for rule in spec["groups"]:
                assert rule["where"]["major"] != "Design"

    def test_convenience_wrapper(self, talent_graph):
        specs = multi_attribute_scenarios(
            talent_graph, "person", ("gender", "major"), count=3, seed=1
        )
        assert specs == ScenarioGenerator(
            talent_graph, "person", ("gender", "major"), seed=1
        ).specs(3)
