"""Unit tests for the ASCII series renderer."""

from repro.bench.plotting import render_series


ROWS = [
    {"x": 0, "y": 0.0, "algo": "A"},
    {"x": 1, "y": 0.5, "algo": "A"},
    {"x": 2, "y": 1.0, "algo": "A"},
    {"x": 0, "y": 1.0, "algo": "B"},
    {"x": 2, "y": 0.0, "algo": "B"},
]


class TestRenderSeries:
    def test_contains_markers_and_axes(self):
        chart = render_series(ROWS, "x", "y", group_by="algo", title="t")
        assert chart.startswith("t")
        assert "o = A" in chart and "x = B" in chart
        assert "x: x, y: y" in chart
        assert "+" + "-" * 10 in chart  # Axis line.

    def test_y_labels_show_extremes(self):
        chart = render_series(ROWS, "x", "y")
        assert "1 |" in chart
        assert "0 |" in chart

    def test_no_data(self):
        assert "(no data)" in render_series([], "x", "y")
        assert "(no data)" in render_series([{"a": 1}], "x", "y")

    def test_non_numeric_rows_skipped(self):
        rows = ROWS + [{"x": "nan?", "y": "oops", "algo": "A"}]
        chart = render_series(rows, "x", "y", group_by="algo")
        assert "x: x" in chart

    def test_constant_series(self):
        rows = [{"x": 0, "y": 5}, {"x": 1, "y": 5}]
        chart = render_series(rows, "x", "y")
        assert "5 |" in chart

    def test_dimensions_respected(self):
        chart = render_series(ROWS, "x", "y", width=20, height=5)
        plot_lines = [l for l in chart.splitlines() if "|" in l]
        assert len(plot_lines) == 5
        for line in plot_lines:
            assert len(line.split("|", 1)[1]) == 20
