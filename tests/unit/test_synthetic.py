"""Unit tests for the schema-driven synthetic graph generator."""

import pytest

from repro.datasets.sampler import Sampler
from repro.datasets.synthetic import (
    Constant,
    EdgePopulation,
    GaussInt,
    LogUniformInt,
    NodePopulation,
    SyntheticSpec,
    UniformChoice,
    UniformInt,
    WeightedCoin,
    ZipfChoice,
    build_synthetic,
)
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def spec():
    return SyntheticSpec(
        name="toy",
        nodes=[
            NodePopulation(
                "user",
                50,
                {
                    "age": GaussInt(35, 12, 18, 80),
                    "plan": ZipfChoice(("free", "pro", "team")),
                    "active": WeightedCoin(0.8, "yes", "no"),
                },
            ),
            NodePopulation("doc", 150, {"size": LogUniformInt(0, 3)}),
        ],
        edges=[
            EdgePopulation(
                "user", "owns", "doc", out_degree=UniformInt(1, 4),
                attachment="preferential",
            ),
            EdgePopulation("user", "follows", "user", attachment="zipf"),
        ],
    )


class TestDistributions:
    def test_constant(self):
        assert Constant(7).sample(Sampler(0)) == 7
        assert Constant(7).is_numeric
        assert not Constant("x").is_numeric

    def test_uniform_int_bounds(self):
        sampler = Sampler(0)
        values = [UniformInt(3, 5).sample(sampler) for _ in range(100)]
        assert set(values) <= {3, 4, 5}

    def test_gauss_int_clipped(self):
        sampler = Sampler(0)
        values = [GaussInt(0, 100, -5, 5).sample(sampler) for _ in range(100)]
        assert min(values) >= -5 and max(values) <= 5

    def test_loguniform_heavy_tail(self):
        sampler = Sampler(0)
        values = [LogUniformInt(0, 3).sample(sampler) for _ in range(500)]
        assert min(values) >= 1 and max(values) <= 1000
        assert max(values) > 50 * min(values)  # Actually spread out.

    def test_choices(self):
        sampler = Sampler(0)
        assert UniformChoice(("a",)).sample(sampler) == "a"
        zipf_values = [ZipfChoice(("a", "b", "c")).sample(sampler) for _ in range(500)]
        assert zipf_values.count("a") > zipf_values.count("c")

    def test_weighted_coin(self):
        sampler = Sampler(0)
        values = [WeightedCoin(0.9, 1, 0).sample(sampler) for _ in range(300)]
        assert sum(values) > 200


class TestSpecValidation:
    def test_duplicate_labels_rejected(self):
        with pytest.raises(DatasetError):
            SyntheticSpec(
                "bad",
                nodes=[NodePopulation("x", 1), NodePopulation("x", 1)],
                edges=[],
            )

    def test_unknown_edge_label_rejected(self):
        with pytest.raises(DatasetError):
            SyntheticSpec(
                "bad",
                nodes=[NodePopulation("x", 1)],
                edges=[EdgePopulation("x", "e", "ghost")],
            )

    def test_unknown_attachment_rejected(self):
        with pytest.raises(DatasetError):
            EdgePopulation("x", "e", "x", attachment="magnetic")


class TestBuild:
    def test_counts_scale(self, spec):
        small = build_synthetic(spec, scale=0.5, seed=1)
        full = build_synthetic(spec, scale=1.0, seed=1)
        assert small.count_label("user") == 25
        assert full.count_label("user") == 50
        assert full.count_label("doc") == 150

    def test_deterministic(self, spec):
        a = build_synthetic(spec, scale=0.5, seed=3)
        b = build_synthetic(spec, scale=0.5, seed=3)
        assert sorted(e.key for e in a.edges()) == sorted(e.key for e in b.edges())

    def test_edges_respect_signature(self, spec):
        graph = build_synthetic(spec, scale=0.5, seed=1)
        for edge in graph.edges():
            source_label = graph.label(edge.source)
            target_label = graph.label(edge.target)
            if edge.label == "owns":
                assert (source_label, target_label) == ("user", "doc")
            else:
                assert (source_label, target_label) == ("user", "user")

    def test_no_self_loops(self, spec):
        graph = build_synthetic(spec, scale=1.0, seed=2)
        assert all(e.source != e.target for e in graph.edges())

    def test_attributes_populated(self, spec):
        graph = build_synthetic(spec, scale=0.5, seed=1)
        some_user = next(iter(graph.nodes_with_label("user")))
        attrs = graph.attributes(some_user)
        assert 18 <= attrs["age"] <= 80
        assert attrs["plan"] in ("free", "pro", "team")


class TestSchemaDerivation:
    def test_to_schema(self, spec):
        schema = spec.to_schema()
        assert set(schema.node_labels) == {"user", "doc"}
        numeric = {a.name for a in schema.numeric_attributes("user")}
        assert numeric == {"age"}
        assert len(schema.edges) == 2

    def test_generated_templates_run_end_to_end(self, spec):
        """The derived schema feeds the template generator and FairSQG."""
        from repro import GenerationConfig, GroupSet, NodeGroup, RfQGen
        from repro.workload import TemplateGenerator, TemplateSpec

        graph = build_synthetic(spec, scale=1.0, seed=5)
        template = TemplateGenerator(spec.to_schema(), seed=2).generate(
            TemplateSpec("user", size=2, num_range_vars=1, num_edge_vars=1)
        )
        users = sorted(graph.nodes_with_label("user"))
        half = len(users) // 2
        groups = GroupSet(
            [
                NodeGroup("a", frozenset(users[:half]), 1),
                NodeGroup("b", frozenset(users[half:]), 1),
            ]
        )
        config = GenerationConfig(
            graph, template, groups, epsilon=0.2, max_domain_values=4
        )
        result = RfQGen(config).run()
        assert result.stats.verified > 0
