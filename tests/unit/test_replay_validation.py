"""Unit tests for workload replay and schema validation."""

import pytest

from repro.datasets.dbp import DBP_SCHEMA, build_dbp
from repro.datasets.lki import LKI_SCHEMA, build_lki
from repro.datasets.validation import validate_graph
from repro.graph.builder import GraphBuilder
from repro.query import Instantiation, QueryInstance
from repro.workload.replay import replay_workload


class TestReplay:
    @pytest.fixture()
    def workload(self, talent_template):
        return [
            QueryInstance(
                Instantiation(talent_template, {"xl1": v, "xl2": c, "xe1": 0})
            )
            for v, c in [(5, 100), (12, 100), (5, 1000), (99, 100)]
        ]

    def test_records_per_query(self, talent_graph, workload):
        report = replay_workload(talent_graph, workload)
        assert len(report.records) == 4
        assert [r.cardinality for r in report.records] == [4, 2, 2, 0]
        assert report.empty_queries == 1
        assert report.total_answers == 8

    def test_audits_attached_when_groups_given(
        self, talent_graph, workload, talent_groups
    ):
        report = replay_workload(talent_graph, workload, talent_groups)
        first = report.records[0]
        assert first.audit is not None
        assert first.audit.feasible
        rows = report.as_rows()
        assert all("DI ratio" in row for row in rows)

    def test_no_groups_no_audit(self, talent_graph, workload):
        report = replay_workload(talent_graph, workload)
        assert all(r.audit is None for r in report.records)
        assert "feasible" not in report.as_rows()[0]

    def test_summary(self, talent_graph, workload):
        report = replay_workload(talent_graph, workload)
        assert "4 queries" in report.summary()
        assert "1 empty" in report.summary()

    def test_empty_workload(self, talent_graph):
        report = replay_workload(talent_graph, [])
        assert report.total_time == 0
        assert report.summary().startswith("0 queries")


class TestValidation:
    def test_datasets_conform_to_their_schemas(self):
        assert validate_graph(build_dbp(scale=0.05), DBP_SCHEMA) == []
        assert validate_graph(build_lki(scale=0.05), LKI_SCHEMA) == []

    def test_unknown_label_detected(self):
        b = GraphBuilder()
        b.node("martian", x=1)
        violations = validate_graph(b.build(), LKI_SCHEMA)
        assert any(v.kind == "unknown-node-label" for v in violations)

    def test_unknown_edge_detected(self):
        b = GraphBuilder()
        p = b.node("person", yearsOfExp=3)
        o = b.node("org", employees=10)
        b.edge(o, p, "employs")  # Not in the schema.
        violations = validate_graph(b.build(), LKI_SCHEMA)
        assert any(v.kind == "unknown-edge" for v in violations)

    def test_attribute_type_detected(self):
        b = GraphBuilder()
        b.node("person", yearsOfExp="ten")  # Should be numeric.
        violations = validate_graph(b.build(), LKI_SCHEMA)
        assert any(v.kind == "attribute-type" for v in violations)

    def test_extra_attribute_lenient_by_default(self):
        b = GraphBuilder()
        b.node("person", yearsOfExp=3, shoeSize=42)
        assert validate_graph(b.build(), LKI_SCHEMA) == []
        strict = validate_graph(b.build(), LKI_SCHEMA, strict_attributes=True)
        assert any(v.kind == "unknown-attribute" for v in strict)

    def test_violation_str(self):
        b = GraphBuilder()
        b.node("martian")
        (violation,) = validate_graph(b.build(), LKI_SCHEMA)
        assert "unknown-node-label" in str(violation)
