"""Unit tests of the daemon's building blocks (``repro.service``).

Covers the lenient wire-format parser (malformed JSONL lines become
structured rejections instead of exceptions), SLO-class budget
resolution, the deficit-round-robin admission controller under an
injectable clock, the dedup ledger's routing rules, and the in-process
fault adapter. The full end-to-end daemon behavior lives in
``tests/integration/test_daemon_chaos.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ServiceError
from repro.obs.registry import MetricsRegistry
from repro.runtime.faults import FaultInjectionError, FaultInjector, FaultKind, FaultSpec
from repro.service.admission import (
    AdmissionController,
    DRR_QUANTUM,
    SHED_DEADLINE,
    SHED_QUEUE_FULL,
    SLO_CLASSES,
    request_cost,
    resolve_budget,
    slo_class,
)
from repro.service.daemon import DedupLedger, ServingDaemon, WorkerCrashed, fire_inline
from repro.service.requests import (
    GenerationRequest,
    RequestOutcome,
    RequestRejection,
    outcome_to_dict,
    parse_request_lines,
    shed_outcome,
)


def make_request(template, request_id="r1", **kwargs):
    return GenerationRequest(request_id, template, **kwargs)


# ---------------------------------------------------------------------- #
# Lenient wire-format parsing
# ---------------------------------------------------------------------- #


def parse(lines, template):
    return list(parse_request_lines(lines, default_template=template))


def test_invalid_json_line_is_rejected_not_raised(talent_template):
    parsed = parse(['{"id": "ok"}', "{truncated", '{"id": "ok2"}'], talent_template)
    assert [type(p).__name__ for p in parsed] == [
        "GenerationRequest",
        "RequestRejection",
        "GenerationRequest",
    ]
    rejection = parsed[1]
    assert rejection.line_no == 2
    assert "invalid JSON" in rejection.reason
    assert rejection.request_id == "line-2"


def test_truncated_and_non_object_lines_are_rejected(talent_template):
    parsed = parse(['"just a string"', "[1, 2]", '{"id": "a"'], talent_template)
    assert all(isinstance(p, RequestRejection) for p in parsed)
    assert parsed[0].reason == "expected a JSON object"
    assert parsed[1].reason == "expected a JSON object"
    assert "invalid JSON" in parsed[2].reason


def test_unknown_keys_and_bad_slo_are_rejected_with_ids(talent_template):
    parsed = parse(
        [
            '{"id": "typo", "client": "alice", "epsilonn": 0.1}',
            '{"id": "badslo", "slo": "platinum"}',
        ],
        talent_template,
    )
    assert all(isinstance(p, RequestRejection) for p in parsed)
    assert parsed[0].request_id == "typo"
    assert parsed[0].client == "alice"
    assert "epsilonn" in parsed[0].reason
    assert parsed[1].request_id == "badslo"
    assert "platinum" in parsed[1].reason


def test_missing_template_without_default_is_rejected():
    parsed = list(parse_request_lines(['{"id": "r1"}']))
    assert isinstance(parsed[0], RequestRejection)
    assert "no template" in parsed[0].reason


def test_duplicate_ids_rejected_first_wins(talent_template):
    parsed = parse(
        ['{"id": "dup", "epsilon": 0.1}', '{"id": "dup", "epsilon": 0.2}'],
        talent_template,
    )
    assert isinstance(parsed[0], GenerationRequest)
    assert parsed[0].epsilon == 0.1
    assert isinstance(parsed[1], RequestRejection)
    assert "duplicate request id" in parsed[1].reason
    assert parsed[1].line_no == 2


def test_blank_and_comment_lines_are_skipped(talent_template):
    parsed = parse(
        ["", "# comment", "   ", '{"id": "only"}'], talent_template
    )
    assert len(parsed) == 1
    assert parsed[0].request_id == "only"


def test_rejection_outcome_dict_shape(talent_template):
    parsed = parse(["nope"], talent_template)
    payload = outcome_to_dict(parsed[0])
    assert payload["ok"] is False
    assert payload["rejected"] is True
    assert payload["line"] == 1
    assert "invalid JSON" in payload["error"]
    json.dumps(payload)  # wire-serializable


def test_rejection_duck_types_as_outcome(talent_template):
    rejection = parse(["nope"], talent_template)[0]
    assert rejection.ok is False
    assert rejection.shed is False
    assert rejection.result is None
    assert rejection.deduplicated is False
    assert rejection.error == rejection.reason
    row = rejection.as_row()
    assert row["error"].startswith("rejected: ")


# ---------------------------------------------------------------------- #
# SLO classes and budget resolution
# ---------------------------------------------------------------------- #


def test_slo_ladder_is_monotone_in_rank():
    ladder = sorted(SLO_CLASSES.values(), key=lambda c: c.rank)
    for stricter, laxer in zip(ladder, ladder[1:]):
        for tight, loose in zip(stricter.caps(), laxer.caps()):
            if loose is None:
                continue  # laxer unbounded: anything is at least as strict
            assert tight is not None and tight <= loose


def test_resolve_budget_takes_tighter_of_class_and_explicit(talent_template):
    interactive = SLO_CLASSES["interactive"]
    # Explicit looser than the class: class caps win.
    loose = make_request(
        talent_template, slo="interactive", deadline_seconds=10.0,
        max_instances=10_000,
    )
    budget = resolve_budget(loose)
    assert budget.deadline_seconds == interactive.deadline_seconds
    assert budget.max_instances == interactive.max_instances
    assert budget.max_backtracks == interactive.max_backtracks
    # Explicit tighter than the class: explicit wins.
    tight = make_request(
        talent_template, slo="interactive", deadline_seconds=0.01, max_instances=3
    )
    budget = resolve_budget(tight)
    assert budget.deadline_seconds == 0.01
    assert budget.max_instances == 3


def test_resolve_budget_unbounded_cases(talent_template):
    assert resolve_budget(make_request(talent_template)) is None
    # batch class is uncapped but an explicit limit still applies
    batch = make_request(talent_template, slo="batch", max_instances=7)
    budget = resolve_budget(batch)
    assert budget.max_instances == 7
    assert budget.deadline_seconds is None
    assert resolve_budget(make_request(talent_template, slo="batch")) is None


def test_request_budget_uses_slo_resolution(talent_template):
    request = make_request(talent_template, slo="interactive")
    assert request.budget() == resolve_budget(request)


def test_unknown_slo_class_fails_loudly(talent_template):
    with pytest.raises(ServiceError):
        slo_class("gold")
    with pytest.raises(ServiceError):
        make_request(talent_template, slo="gold")


def test_slo_is_part_of_the_dedup_signature(talent_template):
    plain = make_request(talent_template)
    classed = make_request(talent_template, slo="interactive")
    assert plain.canonical_signature() != classed.canonical_signature()


def test_request_cost_follows_class(talent_template):
    assert request_cost(make_request(talent_template, slo="interactive")) == 1
    assert request_cost(make_request(talent_template, slo="batch")) == 4
    # default cost is the standard class's
    assert request_cost(make_request(talent_template)) == SLO_CLASSES["standard"].cost
    assert DRR_QUANTUM == max(c.cost for c in SLO_CLASSES.values())


# ---------------------------------------------------------------------- #
# Admission controller (injectable clock)
# ---------------------------------------------------------------------- #


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def controller(queue_depth=4):
    clock = FakeClock()
    metrics = MetricsRegistry()
    return AdmissionController(metrics, queue_depth=queue_depth, clock=clock), clock, metrics


def test_queue_full_offers_are_shed(talent_template):
    ctrl, _, metrics = controller(queue_depth=2)
    for seq in range(2):
        assert ctrl.offer(seq, make_request(talent_template, f"a{seq}", client="a")) is None
    assert ctrl.offer(2, make_request(talent_template, "a2", client="a")) == SHED_QUEUE_FULL
    # Another tenant's queue is independent.
    assert ctrl.offer(3, make_request(talent_template, "b0", client="b")) is None
    assert len(ctrl) == 3
    assert metrics.value("service.admission.shed.queue_full") == 1


def test_deadline_shed_happens_at_dispatch(talent_template):
    ctrl, clock, metrics = controller()
    ctrl.offer(0, make_request(talent_template, "i0", client="a", slo="interactive"))
    ctrl.offer(1, make_request(talent_template, "b0", client="a", slo="batch"))
    clock.now = 1.0  # past the interactive deadline (0.25s), batch has none
    first, reason = ctrl.next()
    assert first.request.request_id == "i0"
    assert reason == SHED_DEADLINE
    second, reason = ctrl.next()
    assert second.request.request_id == "b0"
    assert reason is None
    assert metrics.value("service.admission.shed.deadline") == 1


def test_drr_interleaves_tenants_and_charges_cost(talent_template):
    ctrl, _, _ = controller(queue_depth=16)
    seq = 0
    # Tenant a: four cheap interactive requests; tenant b: two batch ones.
    for i in range(4):
        ctrl.offer(seq, make_request(talent_template, f"a{i}", client="a", slo="interactive"))
        seq += 1
    for i in range(2):
        ctrl.offer(seq, make_request(talent_template, f"b{i}", client="b", slo="batch"))
        seq += 1
    order = []
    while True:
        item = ctrl.next()
        if item is None:
            break
        order.append(item[0].request.request_id)
    # Every id is served exactly once, within-tenant order preserved.
    assert sorted(order) == ["a0", "a1", "a2", "a3", "b0", "b1"]
    assert [x for x in order if x.startswith("a")] == ["a0", "a1", "a2", "a3"]
    assert [x for x in order if x.startswith("b")] == ["b0", "b1"]
    # One quantum buys 4 interactive requests but only 1 batch request,
    # so all of tenant a drains before tenant b's second request.
    assert order.index("b1") > order.index("a3")


def test_idle_tenant_forfeits_deficit(talent_template):
    ctrl, _, _ = controller()
    ctrl.offer(0, make_request(talent_template, "a0", client="a", slo="batch"))
    entry, _ = ctrl.next()
    assert entry.request.request_id == "a0"
    assert ctrl.next() is None
    assert ctrl.tenants == []  # queue emptied, tenant left the rotation


def test_drain_returns_everything_in_seq_order(talent_template):
    ctrl, clock, metrics = controller()
    ctrl.offer(5, make_request(talent_template, "b0", client="b", slo="interactive"))
    ctrl.offer(2, make_request(talent_template, "a0", client="a"))
    clock.now = 100.0  # would shed on dispatch — drain must not care
    drained = ctrl.drain()
    assert [e.seq for e in drained] == [2, 5]
    assert len(ctrl) == 0
    assert metrics.value("service.admission.shed.deadline") == 0


def test_queue_depth_must_be_positive():
    with pytest.raises(ServiceError):
        AdmissionController(queue_depth=0)


# ---------------------------------------------------------------------- #
# Dedup ledger
# ---------------------------------------------------------------------- #


def ok_outcome(request):
    return shed_outcome(request, "shed_queue_full")  # any ok=True outcome works


def test_ledger_routes_execute_wait_replay(talent_template):
    ledger = DedupLedger()
    request = make_request(talent_template)
    sig = request.canonical_signature()
    assert ledger.route(sig, 0) == DedupLedger.EXECUTE
    assert ledger.route(sig, 1) == DedupLedger.WAIT
    assert ledger.route(sig, 2) == DedupLedger.WAIT
    outcome = ok_outcome(request)
    replay, promoted = ledger.complete(sig, outcome)
    assert replay == [1, 2] and promoted is None
    # Later arrivals replay the completed outcome immediately.
    assert ledger.route(sig, 3) is outcome
    assert ledger.orphans == []


def test_ledger_failure_promotes_one_waiter(talent_template):
    ledger = DedupLedger()
    request = make_request(talent_template)
    sig = request.canonical_signature()
    ledger.route(sig, 0)
    ledger.route(sig, 1)
    ledger.route(sig, 2)
    failed = RequestOutcome(request=request, error="boom")
    replay, promoted = ledger.complete(sig, failed)
    assert replay == [] and promoted == 1
    assert ledger.pending(sig) == [2]
    # The promoted attempt succeeds and releases the last waiter.
    replay, promoted = ledger.complete(sig, ok_outcome(request))
    assert replay == [2] and promoted is None
    assert ledger.orphans == []


def test_ledger_keeps_distinct_signatures_apart(talent_template):
    ledger = DedupLedger()
    a = make_request(talent_template, epsilon=0.1).canonical_signature()
    b = make_request(talent_template, epsilon=0.2).canonical_signature()
    assert ledger.route(a, 0) == DedupLedger.EXECUTE
    assert ledger.route(b, 1) == DedupLedger.EXECUTE


# ---------------------------------------------------------------------- #
# In-process fault adapter
# ---------------------------------------------------------------------- #


def test_fire_inline_maps_crash_and_error():
    injector = FaultInjector(
        [
            FaultSpec(kind=FaultKind.CRASH, batch_index=0),
            FaultSpec(kind=FaultKind.ERROR, batch_index=1),
        ]
    )
    with pytest.raises(WorkerCrashed):
        fire_inline(injector, 0, attempt=0)
    with pytest.raises(FaultInjectionError):
        fire_inline(injector, 1, attempt=0)
    # Specs fire on attempts 0..times-1 only (times defaults to 1).
    fire_inline(injector, 0, attempt=1)
    # Unscheduled requests pass through untouched.
    fire_inline(injector, 7, attempt=0)


# ---------------------------------------------------------------------- #
# Daemon construction guards
# ---------------------------------------------------------------------- #


def test_daemon_validates_workers_and_defaults(talent_graph, talent_groups):
    with pytest.raises(ServiceError):
        ServingDaemon(talent_graph, talent_groups, workers=0)
    with pytest.raises(ServiceError):
        ServingDaemon(talent_graph, talent_groups, max_retries=-1)
    with pytest.raises(ServiceError):
        ServingDaemon(talent_graph, talent_groups, defaults={"not_an_option": 1})
