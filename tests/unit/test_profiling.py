"""Unit tests for the verification profiler."""

import pytest

from repro.matching.profiling import profile_instance
from repro.query import Instantiation, QueryInstance


def make(template, **bindings):
    return QueryInstance(Instantiation(template, bindings))


class TestProfileInstance:
    def test_funnel_counts(self, talent_graph, talent_template):
        q = make(talent_template, xl1=12, xl2=1000, xe1=0)
        profile = profile_instance(talent_graph, q)
        by_node = {f.node: f for f in profile.funnels}
        # u0: 6 persons in the pool, 4 directors after the title literal.
        assert by_node["u0"].label_pool == 6
        assert by_node["u0"].after_literals == 4
        # u1: persons with yearsOfExp >= 12 — r2, d1, d2, d3.
        assert by_node["u1"].after_literals == 4
        # After AC, u1 shrinks to {r2} (must recommend and work somewhere).
        assert by_node["u1"].after_propagation == 1
        assert profile.matches == 2

    def test_funnel_monotone(self, talent_graph, talent_template):
        q = make(talent_template, xl1=5, xl2=100, xe1=1)
        profile = profile_instance(talent_graph, q)
        for funnel in profile.funnels:
            assert funnel.label_pool >= funnel.after_literals >= funnel.after_propagation

    def test_bottleneck(self, talent_graph, talent_template):
        q = make(talent_template, xl1=12, xl2=1000, xe1=0)
        profile = profile_instance(talent_graph, q)
        # The org-size literal keeps 1 of 2 orgs (0.5); the recommender
        # literal keeps 4 of 6 persons — the org node is the bottleneck.
        assert profile.bottleneck().node == "u2"

    def test_output_marked_in_rows(self, talent_graph, talent_template):
        q = make(talent_template, xl1=5, xl2=100, xe1=0)
        rows = profile_instance(talent_graph, q).as_rows()
        assert any(row["node"] == "u0*" for row in rows)

    def test_summary_mentions_matches(self, talent_graph, talent_template):
        q = make(talent_template, xl1=5, xl2=100, xe1=0)
        summary = profile_instance(talent_graph, q).summary()
        assert "4 matches" in summary
        assert "tightest node" in summary

    def test_empty_answer_profile(self, talent_graph, talent_template):
        q = make(talent_template, xl1=99, xl2=100, xe1=0)
        profile = profile_instance(talent_graph, q)
        assert profile.matches == 0
        for funnel in profile.funnels:
            assert funnel.after_propagation == 0
