"""Unit tests for the columnar graph core (:mod:`repro.graph.columnar`).

Everything here is differential against the dict-based structures the
store shadows: CSR rows vs adjacency dicts, compiled masks vs
``AttributeIndex.matching_nodes``, interned codes vs raw-value grouping,
in-place patches vs a freshly built store. The mixed-type attribute-table
guard (typed sort keys) is covered at the bottom.
"""

import pytest

from repro.core.distance import (
    GowerTupleDistance,
    pair_sum_categorical,
    pair_sum_interned,
)
from repro.graph.attributed_graph import AttributedGraph, _sort_key
from repro.graph.builder import GraphBuilder
from repro.graph.columnar import (
    HAVE_NUMPY,
    MISSING,
    UNHASHABLE,
    AttributeColumn,
    ColumnarStore,
    CompiledColumn,
    bits_from_mask,
    mask_from_bits,
)
from repro.graph.indexes import BitsetIndex, GraphIndexes
from repro.graph.sampling import d_hop_neighborhood
from repro.graph.statistics import compute_statistics
from repro.matching.delta import GraphDelta
from repro.obs.registry import MetricsRegistry
from repro.query.predicates import Literal, Op
from repro.scoring.state import AttributeStats
from repro.streaming.graph_ops import apply_delta_in_place


def sample_graph():
    builder = GraphBuilder("columnar-sample")
    ages = [25, 30, 30, None, 41, 25, 58, None, 30, 17]
    cities = ["ny", "sf", None, "ny", "la", "sf", "ny", "la", None, "sf"]
    for i in range(10):
        attrs = {}
        if ages[i] is not None:
            attrs["age"] = ages[i]
        if cities[i] is not None:
            attrs["city"] = cities[i]
        builder.node_with_id(i, "person" if i % 2 == 0 else "org", **attrs)
    edges = [
        (0, 1, "knows"),
        (0, 2, "knows"),
        (1, 2, "knows"),
        (2, 4, "works"),
        (4, 6, "works"),
        (6, 0, "knows"),
        (3, 5, "works"),
        (5, 7, "knows"),
        (8, 9, "works"),
        (9, 0, "knows"),
    ]
    for source, target, label in edges:
        builder.edge(source, target, label)
    return builder.build()


def store_of(graph):
    return GraphIndexes(graph).enable_columnar()


class TestStoreLayout:
    def test_orders_match_bitset_enumerations(self):
        graph = sample_graph()
        store = store_of(graph)
        bitset = BitsetIndex(graph)
        for label in graph.node_labels():
            assert store.label_orders[label] == bitset.order(label)
        assert store.node_order == sorted(graph._nodes)

    def test_cross_index_arrays_roundtrip(self):
        graph = sample_graph()
        store = store_of(graph)
        for node_id in graph._nodes:
            gpos = store.node_pos[node_id]
            label = store.label_names[store.label_codes[gpos]]
            local = store.label_local[gpos]
            assert graph.label(node_id) == label
            assert store.label_orders[label][local] == node_id

    def test_enable_columnar_is_idempotent(self):
        indexes = GraphIndexes(sample_graph())
        first = indexes.enable_columnar()
        assert indexes.enable_columnar() is first
        assert indexes.columnar is first

    def test_unfrozen_graph_rejected(self):
        graph = AttributedGraph("unfrozen")
        graph.add_node(0, "a", {})
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            graph.columnar()


class TestCSR:
    def test_rows_equal_adjacency_dicts(self):
        graph = sample_graph()
        store = store_of(graph)
        for edge_label in graph.edge_labels():
            for outgoing in (True, False):
                csr = store.csr(edge_label, outgoing)
                for node_id in graph._nodes:
                    expected = (
                        graph.successors(node_id, edge_label)
                        if outgoing
                        else graph.predecessors(node_id, edge_label)
                    )
                    row = csr.row(store.node_pos[node_id])
                    got = {store.node_order[int(g)] for g in row}
                    assert got == set(expected)

    def test_und_rows_equal_neighbors(self):
        graph = sample_graph()
        store = store_of(graph)
        und = store.und_csr()
        for node_id in graph._nodes:
            row = und.row(store.node_pos[node_id])
            got = {store.node_order[int(g)] for g in row}
            assert got == graph.neighbors(node_id)

    def test_adjacency_mask_equals_bitset_rows(self):
        graph = sample_graph()
        store = store_of(graph)
        bitset = BitsetIndex(graph)
        for node_id in graph._nodes:
            for edge_label in graph.edge_labels():
                for outgoing in (True, False):
                    for neighbor_label in graph.node_labels():
                        assert store.adjacency_mask(
                            node_id, edge_label, outgoing, neighbor_label
                        ) == bitset.adjacency_row(
                            node_id, edge_label, outgoing, neighbor_label
                        )

    def test_degrees_equal_graph_degree(self):
        graph = sample_graph()
        store = store_of(graph)
        degrees = store.degrees()
        for node_id in graph._nodes:
            assert degrees[store.node_pos[node_id]] == graph.degree(node_id)

    def test_statistics_identical_with_and_without_store(self):
        plain = compute_statistics(sample_graph())
        graph = sample_graph()
        GraphIndexes(graph).enable_columnar()
        assert compute_statistics(graph) == plain


class TestCompiledPredicates:
    OPS = (Op.EQ, Op.GE, Op.GT, Op.LE, Op.LT)

    def test_masks_equal_attribute_index(self):
        graph = sample_graph()
        indexes = GraphIndexes(graph)
        store = indexes.enable_columnar()
        bitset = indexes.bitsets
        for label in graph.node_labels():
            for attribute in ("age", "city"):
                for op in self.OPS:
                    for constant in (17, 25, 30, 30.0, 58, 99, "ny", "sf", "zz"):
                        literal = Literal(attribute, op, constant)
                        expected = bitset.mask_of(
                            label,
                            indexes.attributes.matching_nodes(
                                label, attribute, op, constant
                            ),
                        )
                        assert store.literal_mask(label, literal) == expected

    def test_unknown_label_and_attribute(self):
        store = store_of(sample_graph())
        assert store.literal_mask("ghost", Literal("age", Op.GE, 0)) == 0
        assert store.literal_mask("person", Literal("ghost", Op.GE, 0)) == 0
        assert store.column("ghost", "age") is None

    def test_numeric_cross_type_equality(self):
        # 30 and 30.0 are one sort key: EQ 30.0 must hit int-30 nodes.
        store = store_of(sample_graph())
        column = store.column("person", "age").compiled()
        assert column.mask_for(Op.EQ, 30) == column.mask_for(Op.EQ, 30.0)

    def test_present_mask(self):
        graph = sample_graph()
        store = store_of(graph)
        column = store.column("person", "age")
        order = store.label_orders["person"]
        expected = 0
        for local, node_id in enumerate(order):
            if graph.attribute(node_id, "age") is not None:
                expected |= 1 << local
        assert column.compiled().present_mask == expected
        assert column.present == bin(expected).count("1")


class TestInterning:
    def test_equal_values_share_codes(self):
        column = AttributeColumn("l", "a", ["x", "y", "x", None, "y"])
        assert column.codes[0] == column.codes[2]
        assert column.codes[1] == column.codes[4]
        assert column.codes[3] == MISSING
        assert column.num_interned == 2
        assert column.interned_value(column.codes[0]) == "x"

    def test_numeric_equality_merges_like_dict_keys(self):
        # 5 == 5.0 == True is False, but 1 == True: dict-key semantics.
        column = AttributeColumn("l", "a", [5, 5.0, 1, True, 0])
        assert column.codes[0] == column.codes[1]
        assert column.codes[2] == column.codes[3]
        assert column.codes[0] != column.codes[2]

    def test_unhashable_values_flagged(self):
        column = AttributeColumn("l", "a", [[1, 2], "ok"])
        assert column.codes[0] == UNHASHABLE
        assert column.has_unhashable

    def test_pair_sum_interned_matches_categorical(self):
        values = ["a", "b", "a", "c", "b", "a"]
        column = AttributeColumn("l", "a", values)
        assert pair_sum_interned(column.codes) == pair_sum_categorical(values)
        assert pair_sum_interned([]) == 0.0
        assert pair_sum_interned([0]) == 0.0

    def test_gower_interned_path_matches_dict_path(self):
        plain_graph = sample_graph()
        col_graph = sample_graph()
        GraphIndexes(col_graph).enable_columnar()
        plain = GowerTupleDistance(plain_graph, "person")
        fast = GowerTupleDistance(col_graph, "person")
        people = sorted(plain_graph.nodes_with_label("person"))
        for v in people:
            for w in people:
                assert plain(v, w) == fast(v, w)


class TestAttributeStatsFromValues:
    def test_equals_repeated_add(self):
        values = [3, "x", 1.5, None, 3, "y", 2, None, "x", 1.5]
        incremental = AttributeStats()
        for value in values:
            if value is not None:
                incremental.add(value)
        bulk = AttributeStats.from_values(values)
        assert bulk.present == incremental.present
        assert bulk.non_numeric == incremental.non_numeric
        assert bulk.numeric == incremental.numeric
        assert bulk.counts == incremental.counts
        assert list(bulk.counts) == list(incremental.counts)


class TestDhop:
    def test_matches_dict_bfs(self):
        plain = sample_graph()
        graph = sample_graph()
        GraphIndexes(graph).enable_columnar()
        for seeds in ([0], [3, 8], [5], list(plain._nodes)):
            for d in range(4):
                assert d_hop_neighborhood(graph, seeds, d) == d_hop_neighborhood(
                    plain, seeds, d
                )

    def test_unknown_seeds_kept_unexpanded(self):
        graph = sample_graph()
        GraphIndexes(graph).enable_columnar()
        ball = d_hop_neighborhood(graph, [0, 999], 1)
        assert 999 in ball
        assert ball - {999} == d_hop_neighborhood(sample_graph(), [0], 1)


class TestInPlaceRepair:
    def delta(self):
        return GraphDelta(
            insert_edges=((7, 0, "knows"), (3, 6, "works")),
            delete_edges=((0, 1, "knows"),),
            set_attributes=((0, "age", 99), (1, "city", "tokyo"), (4, "age", None)),
        )

    def test_patched_store_equals_fresh_store(self):
        graph = sample_graph()
        store = store_of(graph)
        store.warm()
        # Touch columns and compiled masks so patches hit live structures.
        for label in graph.node_labels():
            for attribute in ("age", "city"):
                store.literal_mask(label, Literal(attribute, Op.GE, 0))
        apply_delta_in_place(graph, self.delta())
        fresh = ColumnarStore(graph)
        for edge_label in graph.edge_labels():
            for outgoing in (True, False):
                patched_csr = store.csr(edge_label, outgoing)
                fresh_csr = fresh.csr(edge_label, outgoing)
                for gpos in range(len(store.node_order)):
                    assert list(map(int, patched_csr.row(gpos))) == list(
                        map(int, fresh_csr.row(gpos))
                    )
        for label in graph.node_labels():
            for attribute in ("age", "city"):
                patched = store.column(label, attribute)
                expected = fresh.column(label, attribute)
                assert patched.values == expected.values
                for op in (Op.EQ, Op.GE, Op.LT):
                    for constant in (25, 99, "ny", "tokyo"):
                        assert patched.compiled().mask_for(
                            op, constant
                        ) == expected.compiled().mask_for(op, constant)

    def test_und_csr_patched(self):
        graph = sample_graph()
        store = store_of(graph)
        store.und_csr()
        apply_delta_in_place(graph, self.delta())
        for node_id in graph._nodes:
            row = store.und_csr().row(store.node_pos[node_id])
            assert {store.node_order[int(g)] for g in row} == graph.neighbors(node_id)

    def test_metrics_count_patches(self):
        graph = sample_graph()
        indexes = GraphIndexes(graph)
        metrics = MetricsRegistry()
        store = indexes.enable_columnar(metrics=metrics)
        store.warm()
        store.column("person", "age")
        apply_delta_in_place(graph, self.delta())
        counters = metrics.counters()
        assert counters["graph.columnar.builds"] == 1
        assert counters["graph.columnar.csr_patches"] > 0
        assert counters["graph.columnar.column_patches"] > 0


class TestMaskHelpers:
    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy-only helpers")
    def test_roundtrip(self):
        for mask in (0, 1, 0b1011, (1 << 70) | 5):
            size = max(71, mask.bit_length())
            assert mask_from_bits(bits_from_mask(mask, size)) == mask

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy-only helpers")
    def test_support_mask_with_overrides(self):
        graph = sample_graph()
        store = store_of(graph)
        bitset = BitsetIndex(graph)
        full_org = bitset.full_mask("org")
        before = store.support_mask("knows", True, "person", "org", full_org)
        apply_delta_in_place(
            graph, GraphDelta(delete_edges=((0, 1, "knows"),))
        )
        after = store.support_mask("knows", True, "person", "org", full_org)
        expected = 0
        for local, node_id in enumerate(store.label_orders["person"]):
            if any(
                graph.label(t) == "org" for t in graph.successors(node_id, "knows")
            ):
                expected |= 1 << local
        assert after == expected
        assert before != after  # the deleted edge was load-bearing


class TestMixedTypeAttributeTables:
    """Satellite: typed sort keys keep mixed-type columns sortable."""

    def mixed_graph(self):
        builder = GraphBuilder("mixed")
        values = [3, "three", 1.5, "one", 2, None, "two"]
        for i, value in enumerate(values):
            attrs = {"v": value} if value is not None else {}
            builder.node_with_id(i, "n", **attrs)
        return builder.build()

    def test_attribute_index_sort_does_not_raise(self):
        graph = self.mixed_graph()
        indexes = GraphIndexes(graph)
        # Building the table sorts mixed int/str values — must not TypeError.
        assert indexes.attributes.matching_nodes("n", "v", Op.GE, 2) >= {0, 4}

    def test_typed_total_order_semantics(self):
        # Numbers form the lower type group: GE over a number includes all
        # strings above it in the total order, GE over a string never
        # reaches back down into the numbers, and LT over a string does.
        graph = self.mixed_graph()
        indexes = GraphIndexes(graph)
        assert indexes.attributes.matching_nodes("n", "v", Op.GE, 0) == {
            0, 1, 2, 3, 4, 6,
        }
        assert indexes.attributes.matching_nodes("n", "v", Op.GE, "a") == {1, 3, 6}
        assert indexes.attributes.matching_nodes("n", "v", Op.LT, "a") == {0, 2, 4}

    def test_compiled_masks_agree_on_mixed_columns(self):
        graph = self.mixed_graph()
        indexes = GraphIndexes(graph)
        store = indexes.enable_columnar()
        for op in (Op.EQ, Op.GE, Op.GT, Op.LE, Op.LT):
            for constant in (0, 1.5, 2, 3, "one", "three", "zz"):
                literal = Literal("v", op, constant)
                expected = indexes.bitsets.mask_of(
                    "n",
                    indexes.attributes.matching_nodes("n", "v", op, constant),
                )
                assert store.literal_mask("n", literal) == expected

    def test_sort_key_distinguishes_types_with_equal_str(self):
        class Weird:
            def __str__(self):
                return "3"

        keys = sorted([_sort_key(3), _sort_key("3"), _sort_key(Weird())])
        assert len(set(keys)) == 3


class TestCompiledColumnDirect:
    def test_empty_column(self):
        compiled = CompiledColumn([None, None])
        assert compiled.present_mask == 0
        for op in (Op.EQ, Op.GE, Op.GT, Op.LE, Op.LT):
            assert compiled.mask_for(op, 1) == 0

    def test_patch_to_new_and_removed_keys(self):
        compiled = CompiledColumn(["a", "b", "a"])
        compiled.patch(1, "b", "c")  # "b" key disappears, "c" appears
        assert compiled.mask_for(Op.EQ, "b") == 0
        assert compiled.mask_for(Op.EQ, "c") == 0b010
        compiled.patch(0, "a", None)  # bit leaves, "a" keeps one member
        assert compiled.mask_for(Op.EQ, "a") == 0b100
        assert compiled.present_mask == 0b110
