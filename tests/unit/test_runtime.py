"""Unit tests for the execution-budget runtime (``repro.runtime``)."""

from __future__ import annotations

import pytest

from repro.obs.registry import MetricsRegistry
from repro.runtime import (
    Budget,
    CancellationToken,
    ExecutionGuard,
    ExecutionInterrupt,
    FaultInjectionError,
    FaultInjector,
    FaultKind,
    FaultSpec,
    NULL_GUARD,
    TickingClock,
    TruncationReason,
)


class TestBudget:
    def test_defaults_are_unbounded(self):
        budget = Budget()
        assert not budget.bounded
        assert budget.describe() == "unbounded"

    def test_any_limit_makes_it_bounded(self):
        assert Budget(deadline_seconds=1.0).bounded
        assert Budget(max_instances=10).bounded
        assert Budget(max_backtracks=100).bounded

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_seconds": 0.0},
            {"deadline_seconds": -1.0},
            {"max_instances": 0},
            {"max_backtracks": -5},
        ],
    )
    def test_non_positive_limits_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Budget(**kwargs)

    def test_describe_lists_set_limits(self):
        text = Budget(deadline_seconds=2.5, max_instances=7).describe()
        assert "deadline=2.5s" in text
        assert "max_instances=7" in text
        assert "max_backtracks" not in text


class TestCancellationToken:
    def test_cancel_and_reset(self):
        token = CancellationToken()
        assert not token.cancelled
        token.cancel()
        token.cancel()  # idempotent
        assert token.cancelled
        token.reset()
        assert not token.cancelled


class TestTickingClock:
    def test_time_is_pure_function_of_calls(self):
        a = TickingClock(tick=0.5)
        b = TickingClock(tick=0.5)
        assert [a() for _ in range(4)] == [b() for _ in range(4)]
        assert a.calls == 4
        assert a.now == pytest.approx(2.0)

    def test_start_offset(self):
        clock = TickingClock(tick=1.0, start=10.0)
        assert clock() == pytest.approx(11.0)


class TestExecutionGuard:
    def test_inert_without_budget_or_token(self):
        registry = MetricsRegistry()
        guard = ExecutionGuard(metrics=registry)
        assert not guard.active
        guard.arm()
        for _ in range(10):
            guard.checkpoint()
        # The inert guard must not perturb the registry at all — this is
        # what keeps unbudgeted counter baselines byte-identical.
        assert not any(n.startswith("runtime.") for n in registry.counters())

    def test_unbounded_budget_is_inert(self):
        guard = ExecutionGuard(Budget(), metrics=MetricsRegistry())
        assert not guard.active

    def test_null_guard_never_trips(self):
        NULL_GUARD.checkpoint(extra_backtracks=10**9)
        assert NULL_GUARD.tripped is None

    def test_max_instances_trips(self):
        registry = MetricsRegistry()
        guard = ExecutionGuard(Budget(max_instances=3), metrics=registry)
        guard.arm()
        registry.counter("evaluator.cache_misses").inc(3)
        with pytest.raises(ExecutionInterrupt) as exc:
            guard.checkpoint()
        assert exc.value.reason is TruncationReason.MAX_INSTANCES
        assert guard.tripped is TruncationReason.MAX_INSTANCES
        assert registry.value("runtime.budget.trips") == 1
        assert registry.value("runtime.budget.trips.max_instances") == 1

    def test_below_limit_does_not_trip(self):
        registry = MetricsRegistry()
        guard = ExecutionGuard(Budget(max_instances=3), metrics=registry)
        guard.arm()
        registry.counter("evaluator.cache_misses").inc(2)
        guard.checkpoint()
        assert guard.tripped is None
        assert registry.value("runtime.budget.checks") == 1

    def test_max_backtracks_counts_in_flight_work(self):
        registry = MetricsRegistry()
        guard = ExecutionGuard(Budget(max_backtracks=10), metrics=registry)
        guard.arm()
        registry.counter("matcher.backtrack_calls").inc(4)
        guard.checkpoint(extra_backtracks=5)  # 9 < 10: fine
        with pytest.raises(ExecutionInterrupt) as exc:
            guard.checkpoint(extra_backtracks=6)  # 10 >= 10: trips
        assert exc.value.reason is TruncationReason.MAX_BACKTRACKS

    def test_deadline_uses_injected_clock(self):
        clock = TickingClock(tick=0.4)
        guard = ExecutionGuard(
            Budget(deadline_seconds=1.0, clock=clock), metrics=MetricsRegistry()
        )
        guard.arm()
        guard.checkpoint()  # elapsed 0.4
        guard.checkpoint()  # elapsed 0.8
        with pytest.raises(ExecutionInterrupt) as exc:
            guard.checkpoint()  # elapsed 1.2 >= 1.0
        assert exc.value.reason is TruncationReason.DEADLINE

    def test_deadline_gauge_exported(self):
        registry = MetricsRegistry()
        guard = ExecutionGuard(Budget(deadline_seconds=2.0), metrics=registry)
        guard.arm()
        assert registry.gauge("runtime.budget.deadline_seconds").value == pytest.approx(
            2.0
        )

    def test_cancellation_trips(self):
        token = CancellationToken()
        guard = ExecutionGuard(token=token, metrics=MetricsRegistry())
        guard.arm()
        guard.checkpoint()
        token.cancel()
        with pytest.raises(ExecutionInterrupt) as exc:
            guard.checkpoint()
        assert exc.value.reason is TruncationReason.CANCELLED

    def test_trip_counted_once_but_always_raises(self):
        registry = MetricsRegistry()
        guard = ExecutionGuard(Budget(max_instances=1), metrics=registry)
        guard.arm()
        registry.counter("evaluator.cache_misses").inc(1)
        for _ in range(3):
            with pytest.raises(ExecutionInterrupt):
                guard.checkpoint()
        assert registry.value("runtime.budget.trips") == 1
        assert registry.value("runtime.budget.checks") == 3

    def test_arm_clears_previous_trip(self):
        clock = TickingClock(tick=0.6)
        guard = ExecutionGuard(
            Budget(deadline_seconds=1.0, clock=clock), metrics=MetricsRegistry()
        )
        guard.arm()
        with pytest.raises(ExecutionInterrupt):
            guard.checkpoint()
            guard.checkpoint()
        assert guard.tripped is not None
        guard.arm()  # re-stamps the deadline origin
        assert guard.tripped is None
        guard.checkpoint()  # one tick past the new origin: within budget


class TestFaultSpec:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_index": -1},
            {"call_index": -2},
            {"times": 0},
            {"delay_seconds": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        base = {"kind": FaultKind.ERROR, "batch_index": 0}
        base.update(kwargs)
        with pytest.raises(ValueError):
            FaultSpec(**base)


class TestFaultInjector:
    def test_error_fault_fires_on_exact_key(self):
        injector = FaultInjector(
            [FaultSpec(FaultKind.ERROR, batch_index=2, call_index=1)]
        )
        injector.maybe_fire(2, 0, 0)  # wrong call
        injector.maybe_fire(1, 0, 1)  # wrong batch
        with pytest.raises(FaultInjectionError):
            injector.maybe_fire(2, 0, 1)

    def test_fault_passes_after_times_attempts(self):
        injector = FaultInjector([FaultSpec(FaultKind.ERROR, batch_index=0, times=2)])
        with pytest.raises(FaultInjectionError):
            injector.maybe_fire(0, 0, 0)
        with pytest.raises(FaultInjectionError):
            injector.maybe_fire(0, 1, 0)
        injector.maybe_fire(0, 2, 0)  # attempt >= times: recovered

    def test_slow_fault_sleeps(self):
        import time

        injector = FaultInjector(
            [FaultSpec(FaultKind.SLOW, batch_index=0, delay_seconds=0.02)]
        )
        start = time.monotonic()
        injector.maybe_fire(0, 0, 0)
        assert time.monotonic() - start >= 0.02

    def test_random_schedule_is_seed_deterministic(self):
        a = FaultInjector.random(num_batches=20, rate=0.5, seed=7)
        b = FaultInjector.random(num_batches=20, rate=0.5, seed=7)
        c = FaultInjector.random(num_batches=20, rate=0.5, seed=8)
        assert a.faults == b.faults
        assert a.faults != c.faults

    def test_expected_failures_caps_at_retry_budget(self):
        injector = FaultInjector(
            [
                FaultSpec(FaultKind.ERROR, batch_index=0, times=1),
                FaultSpec(FaultKind.ERROR, batch_index=1, times=5),
                FaultSpec(FaultKind.ERROR, batch_index=99, times=1),  # no such batch
            ]
        )
        # times=1 -> 1 failure; times=5 with max_retries=2 -> 3 attempts fail.
        assert injector.expected_failures(num_batches=3, max_retries=2) == 4
