"""Unit tests for dominance, ε-dominance, boxes and front extraction."""

import math

import pytest

from repro.core.kung import kung_front
from repro.core.pareto import (
    Box,
    ZERO_BOX,
    box_coordinate,
    box_of,
    dominates,
    epsilon_dominates,
    is_pareto_set,
    minimal_epsilon,
    pareto_front,
)


class Point:
    """Minimal BiObjective stand-in."""

    def __init__(self, delta, coverage):
        self.delta = delta
        self.coverage = coverage

    def __repr__(self):
        return f"P({self.delta}, {self.coverage})"


class TestDominance:
    def test_strict_dominance(self):
        assert dominates(Point(2, 2), Point(1, 2))
        assert dominates(Point(2, 2), Point(2, 1))
        assert not dominates(Point(2, 2), Point(2, 2))
        assert not dominates(Point(1, 3), Point(2, 2))

    def test_epsilon_dominance(self):
        assert epsilon_dominates(Point(1.0, 1.0), Point(1.09, 1.0), 0.1)
        assert not epsilon_dominates(Point(1.0, 1.0), Point(1.2, 1.0), 0.1)
        # Plain dominance implies ε-dominance.
        assert epsilon_dominates(Point(2, 2), Point(1, 1), 0.01)


class TestBoxCoordinates:
    def test_zero_gets_sink_box(self):
        assert box_coordinate(0.0, 0.1) == ZERO_BOX
        assert box_coordinate(-1.0, 0.1) == ZERO_BOX

    def test_same_box_implies_factor(self):
        eps = 0.25
        for value in (0.5, 1.0, 3.7, 120.0):
            b = box_coordinate(value, eps)
            # Box lower edge ≤ value < upper edge.
            assert (1 + eps) ** b <= value * (1 + 1e-9)
            assert value < (1 + eps) ** (b + 1) * (1 + 1e-9)

    def test_monotone(self):
        eps = 0.3
        values = [0.1, 0.5, 1.0, 2.0, 10.0]
        coords = [box_coordinate(v, eps) for v in values]
        assert coords == sorted(coords)

    def test_box_dominates(self):
        assert Box(2, 2).dominates(Box(1, 2))
        assert not Box(2, 2).dominates(Box(2, 2))
        assert Box(2, 2).dominates_or_equal(Box(2, 2))
        assert not Box(1, 3).dominates(Box(2, 2))

    def test_box_of(self):
        b = box_of(Point(2.0, 4.0), 1.0)
        assert b == Box(1, 2)


class TestParetoFront:
    def test_small_front(self):
        points = [Point(1, 5), Point(2, 4), Point(3, 1), Point(2, 2), Point(1, 4)]
        front = pareto_front(points)
        coords = sorted((p.delta, p.coverage) for p in front)
        assert coords == [(1, 5), (2, 4), (3, 1)]

    def test_duplicates_kept(self):
        points = [Point(2, 2), Point(2, 2), Point(1, 1)]
        front = pareto_front(points)
        assert len(front) == 2

    def test_empty(self):
        assert pareto_front([]) == []

    def test_matches_kung(self):
        import random

        rng = random.Random(0)
        points = [Point(rng.randint(0, 20), rng.randint(0, 20)) for _ in range(200)]
        sweep = {(p.delta, p.coverage) for p in pareto_front(points)}
        kung = {(p.delta, p.coverage) for p in kung_front(points)}
        assert sweep == kung

    def test_is_pareto_set(self):
        universe = [Point(1, 5), Point(2, 4), Point(3, 1), Point(2, 2)]
        front = pareto_front(universe)
        assert is_pareto_set(front, universe)
        assert not is_pareto_set([Point(2, 2)], universe)


class TestMinimalEpsilon:
    def test_exact_front_needs_zero(self):
        universe = [Point(1, 5), Point(2, 4), Point(3, 1)]
        assert minimal_epsilon(universe, universe) == 0.0

    def test_single_candidate(self):
        universe = [Point(2, 2), Point(4, 1)]
        # Candidate (2,2) needs factor 2 on delta to cover (4,1).
        assert minimal_epsilon([Point(2, 2)], universe) == pytest.approx(1.0)

    def test_zero_candidate_axis_unusable(self):
        assert minimal_epsilon([Point(0, 5)], [Point(1, 1)]) == math.inf

    def test_zero_universe_axis_free(self):
        # Universe point with 0 coverage needs nothing on that axis.
        assert minimal_epsilon([Point(2, 0)], [Point(2, 0)]) == 0.0


class TestKungFront:
    def test_empty(self):
        assert kung_front([]) == []

    def test_singleton(self):
        p = Point(1, 1)
        assert kung_front([p]) == [p]

    def test_all_dominated_chain(self):
        points = [Point(i, i) for i in range(5)]
        front = kung_front(points)
        assert [(p.delta, p.coverage) for p in front] == [(4, 4)]

    def test_anti_chain(self):
        points = [Point(i, 10 - i) for i in range(5)]
        assert len(kung_front(points)) == 5

    def test_coordinate_ties_kept(self):
        points = [Point(3, 3), Point(3, 3), Point(1, 4)]
        front = kung_front(points)
        assert len(front) == 3
