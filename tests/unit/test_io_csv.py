"""Unit tests for CSV graph IO."""

import pytest

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.io import load_csv, save_csv


@pytest.fixture()
def graph():
    b = GraphBuilder("csv-sample")
    b.node("person", name="ann", age=31, score=2.5)
    b.node("person", name="bob")  # Missing age/score → empty cells.
    b.node("org", employees=100)
    b.edge(0, 2, "worksAt")
    b.edge(1, 0, "knows")
    return b.build()


class TestCsvRoundtrip:
    def test_structure_preserved(self, graph, tmp_path):
        save_csv(graph, tmp_path / "n.csv", tmp_path / "e.csv")
        loaded = load_csv(tmp_path / "n.csv", tmp_path / "e.csv")
        assert loaded.num_nodes == graph.num_nodes
        assert loaded.num_edges == graph.num_edges
        assert loaded.has_edge(0, 2, "worksAt")
        assert loaded.has_edge(1, 0, "knows")

    def test_attribute_types_sniffed(self, graph, tmp_path):
        save_csv(graph, tmp_path / "n.csv", tmp_path / "e.csv")
        loaded = load_csv(tmp_path / "n.csv", tmp_path / "e.csv")
        assert loaded.attribute(0, "age") == 31  # int, not "31".
        assert loaded.attribute(0, "score") == 2.5  # float.
        assert loaded.attribute(0, "name") == "ann"  # string.

    def test_missing_attributes_stay_missing(self, graph, tmp_path):
        save_csv(graph, tmp_path / "n.csv", tmp_path / "e.csv")
        loaded = load_csv(tmp_path / "n.csv", tmp_path / "e.csv")
        assert loaded.attribute(1, "age") is None
        assert "age" not in loaded.node(1).attributes

    def test_loaded_graph_frozen(self, graph, tmp_path):
        save_csv(graph, tmp_path / "n.csv", tmp_path / "e.csv")
        loaded = load_csv(tmp_path / "n.csv", tmp_path / "e.csv")
        with pytest.raises(GraphError):
            loaded.add_node(99, "x")


class TestCsvValidation:
    def test_missing_id_column(self, tmp_path):
        (tmp_path / "n.csv").write_text("label\nperson\n")
        (tmp_path / "e.csv").write_text("source,target\n")
        with pytest.raises(GraphError):
            load_csv(tmp_path / "n.csv", tmp_path / "e.csv")

    def test_missing_label_column(self, tmp_path):
        (tmp_path / "n.csv").write_text("id\n0\n")
        (tmp_path / "e.csv").write_text("source,target\n")
        with pytest.raises(GraphError):
            load_csv(tmp_path / "n.csv", tmp_path / "e.csv")

    def test_missing_edge_columns(self, tmp_path):
        (tmp_path / "n.csv").write_text("id,label\n0,person\n")
        (tmp_path / "e.csv").write_text("from,to\n")
        with pytest.raises(GraphError):
            load_csv(tmp_path / "n.csv", tmp_path / "e.csv")

    def test_edge_without_label_column(self, tmp_path):
        (tmp_path / "n.csv").write_text("id,label\n0,a\n1,a\n")
        (tmp_path / "e.csv").write_text("source,target\n0,1\n")
        loaded = load_csv(tmp_path / "n.csv", tmp_path / "e.csv")
        assert loaded.has_edge(0, 1, "")
