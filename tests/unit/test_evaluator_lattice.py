"""Unit tests for the instance evaluator, configuration, and lattice."""

import pytest

from repro.core.config import GenerationConfig
from repro.core.evaluator import InstanceEvaluator
from repro.core.lattice import InstanceLattice
from repro.errors import ConfigurationError
from repro.query import Instantiation, QueryInstance
from repro.query.refinement import refines, strictly_refines


class TestConfig:
    def test_epsilon_positive(self, talent_graph, talent_template, talent_groups):
        with pytest.raises(ConfigurationError):
            GenerationConfig(talent_graph, talent_template, talent_groups, epsilon=0)

    def test_lambda_bounds(self, talent_graph, talent_template, talent_groups):
        with pytest.raises(ConfigurationError):
            GenerationConfig(
                talent_graph, talent_template, talent_groups, epsilon=0.1, lam=2.0
            )

    def test_output_label_must_exist(self, talent_graph, talent_groups):
        from repro.query import Op, QueryTemplate

        template = (
            QueryTemplate.builder("ghost")
            .node("u0", "alien")
            .range_var("x", "u0", "age", Op.GE)
            .output("u0")
            .build()
        )
        with pytest.raises(ConfigurationError):
            GenerationConfig(talent_graph, template, talent_groups, epsilon=0.1)

    def test_with_helpers(self, talent_config):
        assert talent_config.with_epsilon(0.9).epsilon == 0.9
        assert talent_config.with_epsilon(0.9) is not talent_config


class TestEvaluator:
    def test_coordinates_and_feasibility(self, talent_config, talent_template, talent_ids):
        evaluator = InstanceEvaluator(talent_config)
        q = QueryInstance(
            Instantiation(talent_template, {"xl1": 5, "xl2": 100, "xe1": 0})
        )
        evaluated = evaluator.evaluate(q)
        assert evaluated.matches == {
            talent_ids[d] for d in ("d1", "d2", "d3", "d4")
        }
        assert evaluated.feasible  # 2 M + 2 F covers c=1 each.
        assert evaluated.delta > 0
        # C=2, overshoot of 1 in each group: f = 2 - 2 = 0.
        assert evaluated.coverage == 0.0
        assert evaluated.cardinality == 4

    def test_memoized(self, talent_config, talent_template):
        evaluator = InstanceEvaluator(talent_config)
        q1 = QueryInstance(
            Instantiation(talent_template, {"xl1": 5, "xl2": 100, "xe1": 0})
        )
        q2 = QueryInstance(
            Instantiation(talent_template, {"xl1": 5, "xl2": 100, "xe1": 0})
        )
        assert evaluator.evaluate(q1) is evaluator.evaluate(q2)
        assert evaluator.verified_count == 1

    def test_exact_coverage_scores_max(self, talent_config, talent_template, talent_ids):
        evaluator = InstanceEvaluator(talent_config)
        # xl2=1000 narrows to {d2, d3}: exactly 1 M + 1 F → f = C = 2.
        q = QueryInstance(
            Instantiation(talent_template, {"xl1": 5, "xl2": 1000, "xe1": 0})
        )
        evaluated = evaluator.evaluate(q)
        assert evaluated.matches == {talent_ids["d2"], talent_ids["d3"]}
        assert evaluated.coverage == 2.0
        assert evaluated.feasible

    def test_reset_counters(self, talent_config, talent_template):
        evaluator = InstanceEvaluator(talent_config)
        q = QueryInstance(
            Instantiation(talent_template, {"xl1": 5, "xl2": 100, "xe1": 0})
        )
        evaluator.evaluate(q)
        evaluator.reset_counters()
        assert evaluator.verified_count == 0


class TestLattice:
    def test_root_is_most_relaxed(self, talent_config):
        lattice = InstanceLattice(talent_config)
        root = lattice.root()
        assert root.instantiation["xl1"] == 5  # Min yearsOfExp of persons.
        assert root.instantiation["xl2"] == 100
        assert root.instantiation["xe1"] == 0

    def test_bottom_is_most_refined(self, talent_config):
        lattice = InstanceLattice(talent_config)
        bottom = lattice.bottom()
        assert bottom.instantiation["xe1"] == 1
        root = lattice.root()
        assert strictly_refines(bottom, root)

    def test_children_refine_one_variable(self, talent_config):
        lattice = InstanceLattice(talent_config)
        root = lattice.root()
        children = lattice.refine_children(root, None)
        assert children  # At least one refinement exists.
        for variable, child in children:
            assert strictly_refines(child, root)
            differing = [
                name
                for name in child.instantiation
                if child.instantiation[name] != root.instantiation[name]
            ]
            assert differing == [variable]

    def test_relax_children_invert_refine(self, talent_config):
        lattice = InstanceLattice(talent_config)
        bottom = lattice.bottom()
        children = lattice.relax_children(bottom)
        assert children
        for _, child in children:
            assert strictly_refines(bottom, child)

    def test_root_has_no_relaxations(self, talent_config):
        lattice = InstanceLattice(talent_config)
        assert lattice.relax_children(lattice.root()) == []

    def test_bottom_has_no_refinements(self, talent_config):
        lattice = InstanceLattice(talent_config)
        assert lattice.refine_children(lattice.bottom(), None) == []

    def test_enumerate_matches_space_size(self, talent_config):
        lattice = InstanceLattice(talent_config)
        instances = lattice.enumerate_instances()
        assert len(instances) == lattice.instance_space_size()
        # All distinct.
        keys = {i.instantiation.key for i in instances}
        assert len(keys) == len(instances)

    def test_enumerated_all_refine_root(self, talent_config):
        lattice = InstanceLattice(talent_config)
        root = lattice.root()
        bottom = lattice.bottom()
        for instance in lattice.enumerate_instances():
            assert refines(instance, root)
            assert refines(bottom, instance)

    def test_template_refinement_restricts_domains(self, talent_config):
        from repro.core.evaluator import InstanceEvaluator

        lattice = InstanceLattice(talent_config)
        evaluator = InstanceEvaluator(talent_config)
        root = lattice.root()
        evaluated = evaluator.evaluate(root)
        with_ball = lattice.refine_children(root, evaluated)
        without_ball = lattice.refine_children(root, None)
        # Template refinement may prune children but never invents them.
        assert {v for v, _ in with_ball} <= {v for v, _ in without_ball}
