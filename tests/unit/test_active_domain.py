"""Unit tests for active-domain management and quantization."""

import pytest

from repro.errors import ConfigurationError
from repro.graph.active_domain import ActiveDomainIndex, quantize
from repro.graph.builder import GraphBuilder
from repro.query.predicates import Op
from repro.query.template import QueryTemplate
from repro.query.variables import WILDCARD


@pytest.fixture(scope="module")
def setup():
    b = GraphBuilder()
    for age in [10, 20, 30, 40, 50]:
        b.node("person", age=age)
    b.node("org", size=5)
    graph = b.build()
    template = (
        QueryTemplate.builder("t")
        .node("u0", "person")
        .node("u1", "person")
        .fixed_edge("u1", "u0", "knows")
        .range_var("ge_var", "u0", "age", Op.GE)
        .range_var("le_var", "u1", "age", Op.LE)
        .output("u0")
        .build()
    )
    return graph, template


class TestQuantize:
    def test_short_domain_unchanged(self):
        assert quantize([1, 2, 3], 5) == [1, 2, 3]

    def test_keeps_endpoints(self):
        values = list(range(100))
        picked = quantize(values, 5)
        assert picked[0] == 0 and picked[-1] == 99
        assert len(picked) == 5

    def test_subsequence_order_preserved(self):
        values = list(range(50))
        picked = quantize(values, 7)
        assert picked == sorted(picked)

    def test_requires_two_values(self):
        with pytest.raises(ConfigurationError):
            quantize([1, 2, 3], 1)


class TestDomains:
    def test_ge_domain_relaxed_first(self, setup):
        graph, template = setup
        domains = ActiveDomainIndex(graph, template)
        assert domains.domain("ge_var") == (10, 20, 30, 40, 50)

    def test_le_domain_reversed(self, setup):
        graph, template = setup
        domains = ActiveDomainIndex(graph, template)
        # For <= the most relaxed bound is the maximum.
        assert domains.domain("le_var") == (50, 40, 30, 20, 10)

    def test_quantization_cap(self, setup):
        graph, template = setup
        domains = ActiveDomainIndex(graph, template, max_values=3)
        assert domains.domain("ge_var") == (10, 30, 50)

    def test_edge_variable_rejected(self, setup):
        graph, _ = setup
        template = (
            QueryTemplate.builder("t2")
            .node("u0", "person")
            .node("u1", "person")
            .edge_var("xe", "u1", "u0", "knows")
            .output("u0")
            .build()
        )
        domains = ActiveDomainIndex(graph, template)
        with pytest.raises(ConfigurationError):
            domains.domain("xe")


class TestStepping:
    def test_next_refined_walks_forward(self, setup):
        graph, template = setup
        domains = ActiveDomainIndex(graph, template)
        assert domains.next_refined("ge_var", 10) == 20
        assert domains.next_refined("ge_var", 50) is None
        assert domains.next_refined("ge_var", WILDCARD) == 10

    def test_next_relaxed_walks_backward(self, setup):
        graph, template = setup
        domains = ActiveDomainIndex(graph, template)
        assert domains.next_relaxed("ge_var", 20) == 10
        assert domains.next_relaxed("ge_var", 10) is None
        assert domains.next_relaxed("ge_var", WILDCARD) is None

    def test_extremes(self, setup):
        graph, template = setup
        domains = ActiveDomainIndex(graph, template)
        assert domains.most_relaxed("le_var") == 50
        assert domains.most_refined("le_var") == 10


class TestRestriction:
    def test_restrict_and_release(self, setup):
        graph, template = setup
        domains = ActiveDomainIndex(graph, template)
        domains.restrict("ge_var", [20, 40])
        assert domains.domain("ge_var") == (20, 40)
        assert domains.next_refined("ge_var", 20) == 40
        domains.release("ge_var")
        assert domains.domain("ge_var") == (10, 20, 30, 40, 50)

    def test_next_refined_with_value_outside_restriction(self, setup):
        graph, template = setup
        domains = ActiveDomainIndex(graph, template)
        domains.restrict("ge_var", [20, 40])
        # Current value 30 is not in the restricted domain; the next
        # strictly-refining listed value is 40.
        assert domains.next_refined("ge_var", 30) == 40
        domains.release("ge_var")

    def test_instance_space_size(self, setup):
        graph, template = setup
        domains = ActiveDomainIndex(graph, template)
        # 5 * 5 range combinations, no edge variables.
        assert domains.instance_space_size() == 25
