"""Unit tests for OnlineQGen's internal helpers (distance, nearest, refill)."""

from collections import deque

import pytest

from repro.core.online import OnlineQGen, OnlineSnapshot
from repro.core.update import EpsilonParetoArchive


class FakePoint:
    def __init__(self, delta, coverage, tag):
        self.delta = delta
        self.coverage = coverage
        self.instance = tag
        self.feasible = True

    def __repr__(self):
        return f"F({self.delta},{self.coverage})"


@pytest.fixture()
def online(small_lki_config):
    return OnlineQGen(small_lki_config, k=3, window=5)


class TestGeometry:
    def test_distance_normalized_symmetric(self, online):
        a = FakePoint(online._delta_scale, 0.0, "a")
        b = FakePoint(0.0, online._coverage_scale, "b")
        d = online._distance(a, b)
        assert d == pytest.approx(2**0.5)
        assert online._distance(b, a) == pytest.approx(d)
        assert online._distance(a, a) == 0.0

    def test_nearest(self, online):
        archive = EpsilonParetoArchive(0.1)
        far = FakePoint(online._delta_scale, 0.0, "far")
        near = FakePoint(0.2, online._coverage_scale, "near")
        archive.offer(far)
        archive.offer(near)
        probe = FakePoint(0.0, online._coverage_scale, "probe")
        assert online._nearest(probe, archive) is near

    def test_nearest_empty_archive(self, online):
        archive = EpsilonParetoArchive(0.1)
        assert online._nearest(FakePoint(1, 1, "x"), archive) is None


class TestRefill:
    def test_refill_admits_cached_points(self, online):
        archive = EpsilonParetoArchive(0.1)
        archive.offer(FakePoint(10.0, 1.0, "kept"))
        cache = deque(
            [(1, FakePoint(1.0, 10.0, "cached-good")), (2, FakePoint(0.1, 0.1, "cached-bad"))]
        )
        online._refill(archive, cache)
        tags = {p.instance for p in archive}
        assert "cached-good" in tags
        # The dominated cached point stays cached (or is dropped), never added.
        assert "cached-bad" not in tags

    def test_refill_respects_k(self, online):
        archive = EpsilonParetoArchive(0.1)
        # Fill to k with an antichain.
        for i in range(online.k):
            archive.offer(FakePoint(10.0 - i, 1.0 + i, f"p{i}"))
        cache = deque([(1, FakePoint(0.5, 50.0, "extra"))])
        online._refill(archive, cache)
        assert len(archive) <= online.k


class TestSnapshotDataclass:
    def test_fields(self):
        snap = OnlineSnapshot(5, 0.2, [], 0.001)
        assert snap.timestamp == 5
        assert snap.epsilon == 0.2
        assert snap.delay_seconds == 0.001
