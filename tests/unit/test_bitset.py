"""Unit tests for the bitset matching engine and its index substrate."""

import pytest

from repro.core.config import GenerationConfig
from repro.core.evaluator import InstanceEvaluator
from repro.errors import ConfigurationError, MatchingError
from repro.graph.indexes import GraphIndexes
from repro.matching import LiteralPoolCache, SubgraphMatcher
from repro.matching.bitset import iter_bits
from repro.obs import MetricsRegistry
from repro.query import Instantiation, Literal, Op, QueryInstance


def talent_instance(template, **bindings):
    return QueryInstance(Instantiation(template, bindings))


class TestBitsetIndex:
    def test_enumeration_is_sorted_and_stable(self, talent_graph):
        bitsets = GraphIndexes(talent_graph).bitsets
        order = bitsets.order("person")
        assert list(order) == sorted(order)
        assert bitsets.order("person") is order  # cached
        positions = bitsets.positions("person")
        assert all(order[i] == v for v, i in positions.items())

    def test_full_mask_covers_label(self, talent_graph):
        bitsets = GraphIndexes(talent_graph).bitsets
        assert bitsets.full_mask("person").bit_count() == talent_graph.count_label(
            "person"
        )
        assert bitsets.full_mask("org").bit_count() == 2
        assert bitsets.full_mask("no-such-label") == 0

    def test_mask_roundtrip(self, talent_graph, talent_ids):
        bitsets = GraphIndexes(talent_graph).bitsets
        nodes = {talent_ids["d1"], talent_ids["r2"]}
        mask = bitsets.mask_of("person", nodes)
        assert bitsets.to_ids("person", mask) == nodes

    def test_mask_of_ignores_foreign_ids(self, talent_graph, talent_ids):
        bitsets = GraphIndexes(talent_graph).bitsets
        mask = bitsets.mask_of("org", {talent_ids["o_big"], talent_ids["d1"], 999})
        assert bitsets.to_ids("org", mask) == {talent_ids["o_big"]}

    def test_adjacency_row_directions(self, talent_graph, talent_ids):
        bitsets = GraphIndexes(talent_graph).bitsets
        r1 = talent_ids["r1"]
        out = bitsets.to_ids(
            "person", bitsets.adjacency_row(r1, "recommend", True, "person")
        )
        assert out == {talent_ids["d1"], talent_ids["d2"], talent_ids["d4"]}
        preds = bitsets.to_ids(
            "person",
            bitsets.adjacency_row(talent_ids["d2"], "recommend", False, "person"),
        )
        assert preds == {r1, talent_ids["r2"]}

    def test_adjacency_rows_cached(self, talent_graph, talent_ids):
        bitsets = GraphIndexes(talent_graph).bitsets
        assert bitsets.cached_rows == 0
        bitsets.adjacency_row(talent_ids["r1"], "recommend", True, "person")
        bitsets.adjacency_row(talent_ids["r1"], "recommend", True, "person")
        assert bitsets.cached_rows == 1


class TestIterBits:
    def test_yields_positions_low_first(self):
        assert list(iter_bits(0b101001)) == [0, 3, 5]
        assert list(iter_bits(0)) == []


class TestLiteralPoolCache:
    def test_hit_miss_counters(self, talent_graph):
        metrics = MetricsRegistry()
        cache = LiteralPoolCache(GraphIndexes(talent_graph), metrics)
        literal = Literal("yearsOfExp", Op.GE, 12)
        first = cache.mask("person", literal)
        second = cache.mask("person", literal)
        assert first == second
        assert metrics.value("matcher.bitset.literal_pool_misses") == 1
        assert metrics.value("matcher.bitset.literal_pool_hits") == 1
        assert len(cache) == 1

    def test_distinct_constants_are_distinct_entries(self, talent_graph):
        metrics = MetricsRegistry()
        cache = LiteralPoolCache(GraphIndexes(talent_graph), metrics)
        cache.mask("person", Literal("yearsOfExp", Op.GE, 5))
        cache.mask("person", Literal("yearsOfExp", Op.GE, 12))
        assert metrics.value("matcher.bitset.literal_pool_misses") == 2
        assert len(cache) == 2


class TestEngineSelection:
    def test_unknown_engine_rejected(self, talent_graph):
        with pytest.raises(MatchingError):
            SubgraphMatcher(talent_graph, engine="vectorized")

    def test_config_validates_engine(self, talent_graph, talent_template, talent_groups):
        with pytest.raises(ConfigurationError):
            GenerationConfig(
                talent_graph,
                talent_template,
                talent_groups,
                epsilon=0.3,
                matcher_engine="simd",
            )

    def test_evaluator_threads_engine(self, talent_config):
        from dataclasses import replace

        config = replace(talent_config, matcher_engine="bitset")
        evaluator = InstanceEvaluator(config)
        assert evaluator.matcher.engine == "bitset"
        assert evaluator.matcher._bitset is not None


class TestBitsetMatcher:
    def test_agrees_with_set_engine(self, talent_graph, talent_template):
        set_matcher = SubgraphMatcher(talent_graph)
        bit_matcher = SubgraphMatcher(talent_graph, engine="bitset")
        for xl1, xl2, xe1 in [(5, 100, 0), (12, 100, 1), (5, 1000, 0), (20, 100, 1)]:
            q = talent_instance(talent_template, xl1=xl1, xl2=xl2, xe1=xe1)
            a, b = set_matcher.match(q), bit_matcher.match(q)
            assert a.matches == b.matches
            assert a.candidates == b.candidates
            assert a.pruned_candidates == b.pruned_candidates

    def test_candidate_masks_mirror_candidates(self, talent_graph, talent_template):
        matcher = SubgraphMatcher(talent_graph, engine="bitset")
        q = talent_instance(talent_template, xl1=5, xl2=100, xe1=0)
        result = matcher.match(q)
        assert result.candidate_masks is not None
        bitsets = matcher.indexes.bitsets
        for node_id, mask in result.candidate_masks.items():
            label = q.node_label(node_id)
            assert bitsets.to_ids(label, mask) == result.candidates[node_id]

    def test_set_engine_has_no_masks(self, talent_graph, talent_template):
        result = SubgraphMatcher(talent_graph).match(
            talent_instance(talent_template, xl1=5, xl2=100, xe1=0)
        )
        assert result.candidate_masks is None

    def test_restrict_sets_accepted(self, talent_graph, talent_template, talent_ids):
        matcher = SubgraphMatcher(talent_graph, engine="bitset")
        q = talent_instance(talent_template, xl1=5, xl2=100, xe1=0)
        full = matcher.match(q)
        restricted = matcher.match(q, restrict={"u0": {talent_ids["d2"]}})
        assert restricted.matches <= full.matches
        assert restricted.matches == {talent_ids["d2"]} & full.matches

    def test_restrict_masks_accepted(self, talent_graph, talent_template):
        matcher = SubgraphMatcher(talent_graph, engine="bitset")
        q = talent_instance(talent_template, xl1=5, xl2=100, xe1=0)
        parent = matcher.match(q)
        child = talent_instance(talent_template, xl1=12, xl2=100, xe1=0)
        seeded = matcher.match(child, restrict_masks=parent.candidate_masks)
        fresh = matcher.match(child)
        assert seeded.matches == fresh.matches
        assert seeded.candidates == fresh.candidates

    def test_literal_pool_hits_across_siblings(self, talent_graph, talent_template):
        matcher = SubgraphMatcher(talent_graph, engine="bitset")
        # Siblings share xl2/xe1 literals and vary xl1 — the shared
        # literal masks must be cache hits after the first instance.
        for xl1 in (5, 8, 12, 15):
            matcher.match(talent_instance(talent_template, xl1=xl1, xl2=100, xe1=0))
        assert matcher.metrics.value("matcher.bitset.literal_pool_hits") > 0
        assert matcher.metrics.value("matcher.bitset.mask_intersections") > 0

    def test_match_outputs_agrees(self, talent_graph, talent_template):
        q = talent_instance(talent_template, xl1=5, xl2=100, xe1=1)
        outputs = sorted(q.active_nodes)
        by_set = SubgraphMatcher(talent_graph).match_outputs(q, outputs)
        by_bit = SubgraphMatcher(talent_graph, engine="bitset").match_outputs(
            q, outputs
        )
        assert by_set == by_bit

    def test_match_outputs_validates(self, talent_graph, talent_template):
        q = talent_instance(talent_template, xl1=5, xl2=100, xe1=0)
        with pytest.raises(MatchingError):
            SubgraphMatcher(talent_graph, engine="bitset").match_outputs(q, ["zz"])


class TestExistsEarlyExit:
    def test_exists_agrees_with_match(self, triangle_graph):
        from repro.query import QueryTemplate

        template = (
            QueryTemplate.builder("tri")
            .node("u0", "a")
            .node("u1", "a")
            .node("u2", "a")
            .fixed_edge("u0", "u1", "e")
            .fixed_edge("u1", "u2", "e")
            .fixed_edge("u2", "u0", "e")
            .output("u0")
            .build()
        )
        q = QueryInstance(Instantiation(template, {}))
        for engine in ("set", "bitset"):
            matcher = SubgraphMatcher(triangle_graph, engine=engine)
            assert matcher.exists(q) == bool(matcher.match(q).matches)

    def test_exists_does_less_backtracking(self, triangle_graph):
        from repro.query import QueryTemplate

        template = (
            QueryTemplate.builder("tri")
            .node("u0", "a")
            .node("u1", "a")
            .node("u2", "a")
            .fixed_edge("u0", "u1", "e")
            .fixed_edge("u1", "u2", "e")
            .fixed_edge("u2", "u0", "e")
            .output("u0")
            .build()
        )
        q = QueryInstance(Instantiation(template, {}))
        full = SubgraphMatcher(triangle_graph).match(q)
        assert len(full.matches) > 1  # several witnesses to skip
        early = SubgraphMatcher(triangle_graph).match(q, first_only=True)
        assert len(early.matches) == 1
        assert early.backtrack_calls < full.backtrack_calls
