"""Unit tests for the RPQ substrate: regex, NFA, engine, templates."""

import pytest

from repro.errors import QueryError
from repro.graph.builder import GraphBuilder
from repro.query.predicates import Literal, Op
from repro.query.variables import RangeVariable
from repro.rpq import RPQTemplate, evaluate_rpq, parse_regex
from repro.rpq.engine import reachable_pairs


def sym(label, forward=True):
    return (label, forward)


class TestRegexParsing:
    def test_single_label(self):
        nfa = parse_regex("knows")
        assert nfa.accepts_word([sym("knows")])
        assert not nfa.accepts_word([])
        assert not nfa.accepts_word([sym("likes")])

    def test_concatenation_slash(self):
        nfa = parse_regex("a/b")
        assert nfa.accepts_word([sym("a"), sym("b")])
        assert not nfa.accepts_word([sym("a")])

    def test_concatenation_juxtaposition(self):
        nfa = parse_regex("a b")
        assert nfa.accepts_word([sym("a"), sym("b")])

    def test_alternation(self):
        nfa = parse_regex("a|b")
        assert nfa.accepts_word([sym("a")])
        assert nfa.accepts_word([sym("b")])
        assert not nfa.accepts_word([sym("a"), sym("b")])

    def test_star(self):
        nfa = parse_regex("a*")
        assert nfa.matches_empty()
        assert nfa.accepts_word([sym("a")] * 5)

    def test_plus(self):
        nfa = parse_regex("a+")
        assert not nfa.matches_empty()
        assert nfa.accepts_word([sym("a")])
        assert nfa.accepts_word([sym("a")] * 3)

    def test_optional(self):
        nfa = parse_regex("a?")
        assert nfa.matches_empty()
        assert nfa.accepts_word([sym("a")])
        assert not nfa.accepts_word([sym("a"), sym("a")])

    def test_inverse(self):
        nfa = parse_regex("^a")
        assert nfa.accepts_word([sym("a", forward=False)])
        assert not nfa.accepts_word([sym("a")])

    def test_grouping_precedence(self):
        nfa = parse_regex("(a/b)|c")
        assert nfa.accepts_word([sym("a"), sym("b")])
        assert nfa.accepts_word([sym("c")])
        # Without grouping, a/(b|c):
        other = parse_regex("a/(b|c)")
        assert other.accepts_word([sym("a"), sym("c")])
        assert not other.accepts_word([sym("c")])

    def test_star_on_group(self):
        nfa = parse_regex("(a/b)*")
        assert nfa.matches_empty()
        assert nfa.accepts_word([sym("a"), sym("b"), sym("a"), sym("b")])
        assert not nfa.accepts_word([sym("a")])

    @pytest.mark.parametrize(
        "bad", ["", "(a", "a)", "|a", "a/", "^", "a^", "*", "a b )"]
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(QueryError):
            parse_regex(bad)


@pytest.fixture(scope="module")
def path_graph():
    # p0 -r-> p1 -r-> p2 -r-> p3; p1 -w-> o0; p2 -w-> o0.
    b = GraphBuilder()
    p = [b.node("person", idx=i) for i in range(4)]
    org = b.node("org")
    for i in range(3):
        b.edge(p[i], p[i + 1], "r")
    b.edge(p[1], org, "w")
    b.edge(p[2], org, "w")
    return b.build()


class TestEngine:
    def test_single_step(self, path_graph):
        nfa = parse_regex("r")
        assert evaluate_rpq(path_graph, [0], nfa) == {1}

    def test_plus_closure(self, path_graph):
        nfa = parse_regex("r+")
        assert evaluate_rpq(path_graph, [0], nfa) == {1, 2, 3}

    def test_star_includes_sources(self, path_graph):
        nfa = parse_regex("r*")
        assert evaluate_rpq(path_graph, [2], nfa) == {2, 3}

    def test_inverse_step(self, path_graph):
        nfa = parse_regex("^r")
        assert evaluate_rpq(path_graph, [2], nfa) == {1}

    def test_colleague_pattern(self, path_graph):
        # w/^w: nodes sharing an org (including self via the same edge).
        nfa = parse_regex("w/^w")
        assert evaluate_rpq(path_graph, [1], nfa) == {1, 2}

    def test_multiple_sources(self, path_graph):
        nfa = parse_regex("r")
        assert evaluate_rpq(path_graph, [0, 2], nfa) == {1, 3}

    def test_no_match(self, path_graph):
        nfa = parse_regex("zz")
        assert evaluate_rpq(path_graph, [0], nfa) == frozenset()

    def test_reachable_pairs(self, path_graph):
        nfa = parse_regex("r")
        pairs = reachable_pairs(path_graph, [0, 1], nfa)
        assert pairs == {0: frozenset({1}), 1: frozenset({2})}


class TestRPQTemplate:
    @pytest.fixture(scope="class")
    def graph(self):
        b = GraphBuilder()
        people = [
            b.node("person", seniority=i, gender="M" if i % 2 else "F")
            for i in range(6)
        ]
        for i in range(5):
            b.edge(people[i], people[i + 1], "recommend")
        return b.build()

    def make_template(self):
        return RPQTemplate(
            "chain",
            source_label="person",
            path="recommend+",
            range_variables=[
                RangeVariable("min_src", "source", "seniority", Op.GE),
                RangeVariable("min_dst", "target", "seniority", Op.GE),
            ],
        )

    def test_answer_respects_bounds(self, graph):
        template = self.make_template()
        instance = template.instantiate({"min_src": 0, "min_dst": 3})
        # Reachable from anyone via recommend+ with seniority >= 3: {3,4,5}.
        assert instance.answer(graph) == {3, 4, 5}

    def test_refining_source_shrinks_answer(self, graph):
        template = self.make_template()
        relaxed = template.instantiate({"min_src": 0, "min_dst": 0})
        refined = template.instantiate({"min_src": 4, "min_dst": 0})
        assert refined.answer(graph) <= relaxed.answer(graph)

    def test_wildcards_drop_predicates(self, graph):
        template = self.make_template()
        instance = template.instantiate({})
        assert instance.answer(graph) == {1, 2, 3, 4, 5}

    def test_bad_anchor_rejected(self):
        with pytest.raises(QueryError):
            RPQTemplate(
                "bad",
                source_label="person",
                path="r",
                range_variables=[RangeVariable("x", "middle", "a", Op.GE)],
            )

    def test_enumerate_instances(self, graph):
        template = self.make_template()
        instances = template.enumerate_instances(graph, max_values=3)
        # 3 values per variable (quantized).
        assert len(instances) == 9
        assert len({i.key for i in instances}) == 9

    def test_describe(self, graph):
        template = self.make_template()
        text = template.instantiate({"min_src": 2}).describe()
        assert "recommend+" in text and "seniority >= 2" in text

    def test_fixed_literals(self, graph):
        template = RPQTemplate(
            "fixed",
            source_label="person",
            path="recommend+",
            target_literals=[Literal("gender", Op.EQ, "F")],
        )
        answer = template.instantiate({}).answer(graph)
        assert answer == {2, 4}  # F-gendered reachable nodes.
