"""Unit tests for the attributed-graph store."""

import pytest

from repro.errors import GraphError
from repro.graph import AttributedGraph
from repro.graph.attributed_graph import _sort_key


def make_graph():
    g = AttributedGraph("g")
    g.add_node(0, "person", {"age": 30, "name": "a"})
    g.add_node(1, "person", {"age": 40})
    g.add_node(2, "org", {"employees": 100})
    g.add_edge(0, 2, "worksAt")
    g.add_edge(1, 2, "worksAt")
    g.add_edge(0, 1, "knows")
    return g


class TestConstruction:
    def test_counts(self):
        g = make_graph()
        assert g.num_nodes == 3
        assert g.num_edges == 3
        assert len(g) == 3

    def test_duplicate_node_rejected(self):
        g = make_graph()
        with pytest.raises(GraphError):
            g.add_node(0, "person")

    def test_edge_requires_endpoints(self):
        g = make_graph()
        with pytest.raises(GraphError):
            g.add_edge(0, 99, "x")
        with pytest.raises(GraphError):
            g.add_edge(99, 0, "x")

    def test_parallel_same_label_edges_collapse(self):
        g = make_graph()
        g.add_edge(0, 2, "worksAt")
        assert g.num_edges == 3

    def test_parallel_distinct_label_edges_kept(self):
        g = make_graph()
        g.add_edge(0, 2, "owns")
        assert g.num_edges == 4

    def test_freeze_blocks_mutation(self):
        g = make_graph().freeze()
        with pytest.raises(GraphError):
            g.add_node(9, "x")
        with pytest.raises(GraphError):
            g.add_edge(0, 1, "y")


class TestAccessors:
    def test_node_lookup(self):
        g = make_graph()
        assert g.node(0).label == "person"
        assert g.label(2) == "org"
        with pytest.raises(GraphError):
            g.node(42)

    def test_contains(self):
        g = make_graph()
        assert 0 in g and 42 not in g
        assert g.has_node(1)

    def test_attributes(self):
        g = make_graph()
        assert g.attribute(0, "age") == 30
        assert g.attribute(0, "missing") is None
        assert g.attribute(0, "missing", -1) == -1
        assert dict(g.attributes(2)) == {"employees": 100}

    def test_node_iteration(self):
        g = make_graph()
        assert sorted(n.node_id for n in g.nodes()) == [0, 1, 2]
        assert sorted(g.node_ids()) == [0, 1, 2]

    def test_edge_iteration(self):
        g = make_graph()
        keys = sorted(e.key for e in g.edges())
        assert keys == [(0, 1, "knows"), (0, 2, "worksAt"), (1, 2, "worksAt")]


class TestAdjacency:
    def test_labels(self):
        g = make_graph()
        assert g.node_labels() == {"person", "org"}
        assert g.edge_labels() == {"worksAt", "knows"}
        assert g.nodes_with_label("person") == {0, 1}
        assert g.count_label("org") == 1
        assert g.nodes_with_label("ghost") == frozenset()

    def test_has_edge(self):
        g = make_graph()
        assert g.has_edge(0, 2, "worksAt")
        assert not g.has_edge(2, 0, "worksAt")
        assert not g.has_edge(0, 2, "knows")

    def test_successors_predecessors(self):
        g = make_graph()
        assert g.successors(0) == {1, 2}
        assert g.successors(0, "knows") == {1}
        assert g.predecessors(2) == {0, 1}
        assert g.predecessors(2, "worksAt") == {0, 1}
        assert g.neighbors(1) == {0, 2}

    def test_degrees(self):
        g = make_graph()
        assert g.out_degree(0) == 2
        assert g.in_degree(2) == 2
        assert g.degree(1) == 2

    def test_in_out_edges(self):
        g = make_graph()
        assert {e.target for e in g.out_edges(0)} == {1, 2}
        assert {e.source for e in g.in_edges(2)} == {0, 1}


class TestAttributeQueries:
    def test_attribute_names(self):
        g = make_graph()
        assert g.attribute_names() == {"age", "name", "employees"}

    def test_active_domain_global(self):
        g = make_graph()
        assert g.active_domain("age") == [30, 40]

    def test_active_domain_by_label(self):
        g = make_graph()
        assert g.active_domain("employees", "org") == [100]
        assert g.active_domain("employees", "person") == []

    def test_mixed_type_sort_key(self):
        # Numbers order before strings; booleans behave as 0/1.
        assert _sort_key(3) < _sort_key("a")
        assert _sort_key(False) < _sort_key(True)
        assert _sort_key(2.5) < _sort_key(3)


class TestInterop:
    def test_to_networkx(self):
        g = make_graph()
        nx_graph = g.to_networkx()
        assert nx_graph.number_of_nodes() == 3
        assert nx_graph.number_of_edges() == 3
        assert nx_graph.nodes[0]["label"] == "person"
        assert nx_graph.nodes[0]["age"] == 30
