"""Unit tests for the Update procedure (ε-Pareto archive)."""

import pytest

from repro.core.pareto import epsilon_dominates
from repro.core.update import EpsilonParetoArchive, UpdateCase


class FakeEvaluated:
    """Duck-typed EvaluatedInstance for archive tests."""

    def __init__(self, delta, coverage, tag=None):
        self.delta = delta
        self.coverage = coverage
        self.instance = tag if tag is not None else (delta, coverage)
        self.feasible = True

    def __repr__(self):
        return f"F({self.delta}, {self.coverage})"


class TestOfferCases:
    def test_first_offer_adds(self):
        archive = EpsilonParetoArchive(0.5)
        assert archive.offer(FakeEvaluated(1.0, 1.0)) is UpdateCase.ADDED_BOX
        assert len(archive) == 1

    def test_dominating_box_replaces(self):
        archive = EpsilonParetoArchive(0.5)
        archive.offer(FakeEvaluated(1.0, 1.0))
        case = archive.offer(FakeEvaluated(10.0, 10.0))
        assert case is UpdateCase.REPLACED_BOXES
        assert len(archive) == 1
        assert archive.instances()[0].delta == 10.0

    def test_multiple_boxes_replaced_at_once(self):
        archive = EpsilonParetoArchive(0.5)
        archive.offer(FakeEvaluated(1.0, 8.0))
        archive.offer(FakeEvaluated(8.0, 1.0))
        assert len(archive) == 2
        case = archive.offer(FakeEvaluated(100.0, 100.0))
        assert case is UpdateCase.REPLACED_BOXES
        assert len(archive) == 1

    def test_same_box_duel_keeps_dominant(self):
        archive = EpsilonParetoArchive(1.0)  # Wide boxes.
        weak = FakeEvaluated(2.0, 2.0)
        strong = FakeEvaluated(2.5, 2.5)
        archive.offer(weak)
        case = archive.offer(strong)
        assert case is UpdateCase.REPLACED_INSTANCE
        assert archive.instances()[0] is strong

    def test_same_box_incomparable_keeps_occupant(self):
        archive = EpsilonParetoArchive(1.0)
        first = FakeEvaluated(2.0, 2.5)
        second = FakeEvaluated(2.5, 2.0)  # Same boxes, neither dominates.
        archive.offer(first)
        assert archive.offer(second) is UpdateCase.REJECTED
        assert archive.instances()[0] is first

    def test_dominated_box_rejected(self):
        archive = EpsilonParetoArchive(0.5)
        archive.offer(FakeEvaluated(10.0, 10.0))
        assert archive.offer(FakeEvaluated(1.0, 1.0)) is UpdateCase.REJECTED

    def test_incomparable_boxes_coexist(self):
        archive = EpsilonParetoArchive(0.1)
        archive.offer(FakeEvaluated(10.0, 1.0))
        assert archive.offer(FakeEvaluated(1.0, 10.0)) is UpdateCase.ADDED_BOX
        assert len(archive) == 2

    def test_classify_does_not_mutate(self):
        archive = EpsilonParetoArchive(0.5)
        archive.offer(FakeEvaluated(1.0, 1.0))
        archive.classify(FakeEvaluated(50.0, 50.0))
        assert len(archive) == 1
        assert archive.instances()[0].delta == 1.0


class TestArchiveInvariants:
    def test_every_offered_point_is_epsilon_dominated(self):
        import random

        rng = random.Random(1)
        eps = 0.3
        archive = EpsilonParetoArchive(eps)
        offered = []
        for _ in range(300):
            point = FakeEvaluated(rng.uniform(0, 50), rng.uniform(0, 50))
            offered.append(point)
            archive.offer(point)
        kept = archive.instances()
        for point in offered:
            assert any(epsilon_dominates(k, point, eps) for k in kept), point

    def test_kept_boxes_mutually_non_dominating(self):
        import random

        rng = random.Random(2)
        archive = EpsilonParetoArchive(0.4)
        for _ in range(200):
            archive.offer(FakeEvaluated(rng.uniform(0, 30), rng.uniform(0, 30)))
        boxes = list(archive.boxes().keys())
        for i, a in enumerate(boxes):
            for j, b in enumerate(boxes):
                if i != j:
                    assert not a.dominates(b)

    def test_size_bound(self):
        import random

        rng = random.Random(3)
        eps = 0.25
        archive = EpsilonParetoArchive(eps)
        for _ in range(500):
            archive.offer(FakeEvaluated(rng.uniform(0, 100), rng.uniform(0, 100)))
        assert len(archive) <= archive.size_bound(100.0, 100.0)


class TestMaintenance:
    def test_remove(self):
        archive = EpsilonParetoArchive(0.3)
        point = FakeEvaluated(5.0, 5.0, tag="a")
        archive.offer(point)
        assert archive.remove(point)
        assert len(archive) == 0
        assert not archive.remove(point)

    def test_rebuild_with_larger_epsilon_shrinks_or_keeps(self):
        archive = EpsilonParetoArchive(0.05)
        points = [FakeEvaluated(1.0 + 0.1 * i, 10.0 - 0.5 * i) for i in range(10)]
        for p in points:
            archive.offer(p)
        before = len(archive)
        archive.rebuild(1.0)
        assert len(archive) <= before
        assert archive.epsilon == 1.0

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            EpsilonParetoArchive(0.0)

    def test_instances_ordering(self):
        archive = EpsilonParetoArchive(0.1)
        archive.offer(FakeEvaluated(1.0, 10.0))
        archive.offer(FakeEvaluated(10.0, 1.0))
        ordered = archive.instances()
        assert ordered[0].delta >= ordered[1].delta
