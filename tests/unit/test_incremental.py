"""Unit tests for incremental verification (incVerify)."""

from repro.matching import IncrementalVerifier, SubgraphMatcher
from repro.query import Instantiation, QueryInstance


def make(template, **bindings):
    return QueryInstance(Instantiation(template, bindings))


class TestMemoization:
    def test_same_instance_verified_once(self, talent_graph, talent_template):
        verifier = IncrementalVerifier(SubgraphMatcher(talent_graph))
        q = make(talent_template, xl1=5, xl2=100, xe1=0)
        first = verifier.verify(q)
        second = verifier.verify(make(talent_template, xl1=5, xl2=100, xe1=0))
        assert first is second
        assert verifier.verified_count == 1
        assert verifier.cache_hits == 1

    def test_clear_resets(self, talent_graph, talent_template):
        verifier = IncrementalVerifier(SubgraphMatcher(talent_graph))
        verifier.verify(make(talent_template, xl1=5, xl2=100, xe1=0))
        verifier.clear()
        assert verifier.verified_count == 0
        assert verifier.peek(make(talent_template, xl1=5, xl2=100, xe1=0)) is None


class TestParentSeeding:
    def test_child_matches_subset_of_parent(self, talent_graph, talent_template):
        verifier = IncrementalVerifier(SubgraphMatcher(talent_graph))
        parent = make(talent_template, xl1=5, xl2=100, xe1=0)
        child = make(talent_template, xl1=12, xl2=100, xe1=0)
        parent_result = verifier.verify(parent)
        child_result = verifier.verify(child, parent)
        assert child_result.matches <= parent_result.matches
        assert verifier.incremental_count == 1

    def test_seeded_equals_unseeded(self, talent_graph, talent_template):
        parent = make(talent_template, xl1=5, xl2=100, xe1=0)
        child = make(talent_template, xl1=12, xl2=1000, xe1=1)

        seeded = IncrementalVerifier(SubgraphMatcher(talent_graph))
        seeded.verify(parent)
        with_seed = seeded.verify(child, parent)

        plain = IncrementalVerifier(SubgraphMatcher(talent_graph), use_incremental=False)
        without_seed = plain.verify(child)

        assert with_seed.matches == without_seed.matches

    def test_unknown_parent_falls_back(self, talent_graph, talent_template):
        verifier = IncrementalVerifier(SubgraphMatcher(talent_graph))
        parent = make(talent_template, xl1=5, xl2=100, xe1=0)  # Never verified.
        child = make(talent_template, xl1=12, xl2=100, xe1=0)
        result = verifier.verify(child, parent)
        assert result.matches  # Full verification still ran.
        assert verifier.incremental_count == 0

    def test_incremental_disabled(self, talent_graph, talent_template):
        verifier = IncrementalVerifier(
            SubgraphMatcher(talent_graph), use_incremental=False
        )
        parent = make(talent_template, xl1=5, xl2=100, xe1=0)
        child = make(talent_template, xl1=12, xl2=100, xe1=0)
        verifier.verify(parent)
        verifier.verify(child, parent)
        assert verifier.incremental_count == 0
