"""Unit tests for PageRank and the PageRank relevance scorer."""

import pytest

from repro.core.pagerank import PageRankRelevance, pagerank
from repro.graph.builder import GraphBuilder


@pytest.fixture(scope="module")
def star_graph():
    # Node 0 is the hub (everyone links to it, it links nowhere); node 1
    # ("second") additionally receives a link from one leaf.
    b = GraphBuilder()
    hub = b.node("p", name="hub")
    second = b.node("p", name="second")
    b.edge(second, hub, "e")
    leaves = [b.node("p") for _ in range(4)]
    for leaf in leaves:
        b.edge(leaf, hub, "e")
    b.edge(leaves[0], second, "e")
    return b.build()


class TestPageRank:
    def test_distribution_sums_to_one(self, star_graph):
        scores = pagerank(star_graph)
        assert sum(scores.values()) == pytest.approx(1.0, abs=1e-8)

    def test_hub_ranks_highest(self, star_graph):
        scores = pagerank(star_graph)
        assert max(scores, key=scores.get) == 0

    def test_second_beats_plain_leaves(self, star_graph):
        scores = pagerank(star_graph)
        leaves = [scores[v] for v in range(3, 6)]
        assert scores[1] > max(leaves)

    def test_empty_graph(self):
        assert pagerank(GraphBuilder().build()) == {}

    def test_edgeless_graph_uniform(self):
        b = GraphBuilder()
        for _ in range(4):
            b.node("p")
        scores = pagerank(b.build())
        values = list(scores.values())
        assert max(values) == pytest.approx(min(values))

    def test_matches_networkx(self, star_graph):
        nx = pytest.importorskip("networkx")

        ours = pagerank(star_graph, damping=0.85)
        nx_graph = nx.DiGraph()
        nx_graph.add_nodes_from(star_graph.node_ids())
        for edge in star_graph.edges():
            nx_graph.add_edge(edge.source, edge.target)
        reference = nx.pagerank(nx_graph, alpha=0.85, tol=1e-12)
        for node_id, score in reference.items():
            assert ours[node_id] == pytest.approx(score, abs=1e-6)


class TestPageRankRelevance:
    def test_normalized_to_label_max(self, star_graph):
        relevance = PageRankRelevance(star_graph, "p")
        assert relevance(0) == 1.0
        for v in range(1, 6):
            assert 0.0 < relevance(v) <= 1.0

    def test_unknown_node_scores_zero(self, star_graph):
        relevance = PageRankRelevance(star_graph, "p")
        assert relevance(999) == 0.0

    def test_precomputed_scores_accepted(self, star_graph):
        relevance = PageRankRelevance(
            star_graph, "p", precomputed={v: 1.0 for v in range(6)}
        )
        assert relevance(3) == 1.0

    def test_usable_as_diversity_relevance(self, star_graph):
        from repro.core.measures import DiversityMeasure

        measure = DiversityMeasure(
            star_graph, "p", lam=0.0, relevance=PageRankRelevance(star_graph, "p")
        )
        assert measure.of({0, 1}) > measure.of({2, 3})
