"""Unit tests for label and attribute indexes."""

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.indexes import AttributeIndex, GraphIndexes, LabelIndex
from repro.query.predicates import Op


@pytest.fixture(scope="module")
def graph():
    b = GraphBuilder()
    for i, age in enumerate([10, 20, 20, 30, 40]):
        b.node("person", age=age, rank=i)
    b.node("person")  # No attributes: excluded from attribute index.
    b.node("org", employees=100)
    return b.build()


class TestLabelIndex:
    def test_nodes_and_count(self, graph):
        index = LabelIndex(graph)
        assert index.count("person") == 6
        assert index.count("org") == 1
        assert index.count("ghost") == 0

    def test_cached_result_is_stable(self, graph):
        index = LabelIndex(graph)
        first = index.nodes("person")
        assert index.nodes("person") is first


class TestAttributeIndex:
    @pytest.mark.parametrize(
        "op,constant,expected_ages",
        [
            (Op.GE, 20, [20, 20, 30, 40]),
            (Op.GT, 20, [30, 40]),
            (Op.LE, 20, [10, 20, 20]),
            (Op.LT, 20, [10]),
            (Op.EQ, 20, [20, 20]),
        ],
    )
    def test_matching_nodes(self, graph, op, constant, expected_ages):
        index = AttributeIndex(graph)
        nodes = index.matching_nodes("person", "age", op, constant)
        ages = sorted(graph.attribute(v, "age") for v in nodes)
        assert ages == expected_ages

    def test_count_matching_agrees_with_matching_nodes(self, graph):
        index = AttributeIndex(graph)
        for op in Op:
            count = index.count_matching("person", "age", op, 20)
            nodes = index.matching_nodes("person", "age", op, 20)
            assert count == len(nodes)

    def test_missing_attribute_never_matches(self, graph):
        index = AttributeIndex(graph)
        # Node 5 has no attributes at all.
        assert 5 not in index.matching_nodes("person", "age", Op.GE, 0)

    def test_values_sorted_distinct(self, graph):
        index = AttributeIndex(graph)
        assert index.values("person", "age") == [10, 20, 30, 40]

    def test_unknown_label_or_attribute_empty(self, graph):
        index = AttributeIndex(graph)
        assert index.matching_nodes("ghost", "age", Op.GE, 0) == set()
        assert index.matching_nodes("person", "ghost", Op.GE, 0) == set()


class TestGraphIndexes:
    def test_candidate_pool(self, graph):
        indexes = GraphIndexes(graph)
        assert indexes.candidate_pool("org") == graph.nodes_with_label("org")
