"""Unit tests for the distance kernels."""

import pytest

from repro.core.distance import (
    EditTupleDistance,
    GowerTupleDistance,
    levenshtein,
    normalized_levenshtein,
    pair_sum_categorical,
    pair_sum_numeric,
)
from repro.graph.builder import GraphBuilder


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "", 3),
            ("", "xy", 2),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
        ],
    )
    def test_distance(self, a, b, expected):
        assert levenshtein(a, b) == expected

    def test_symmetry(self):
        assert levenshtein("abcde", "xc") == levenshtein("xc", "abcde")

    def test_normalized_range(self):
        assert normalized_levenshtein("", "") == 0.0
        assert normalized_levenshtein("abc", "xyz") == 1.0
        assert 0 < normalized_levenshtein("abc", "abd") < 1


class TestPairSums:
    def test_numeric_matches_bruteforce(self):
        values = [0.1, 0.9, 0.5, 0.3, 0.3]
        brute = sum(
            abs(values[i] - values[j])
            for i in range(len(values))
            for j in range(i + 1, len(values))
        )
        assert pair_sum_numeric(values) == pytest.approx(brute)

    def test_numeric_empty_and_single(self):
        assert pair_sum_numeric([]) == 0
        assert pair_sum_numeric([3.0]) == 0

    def test_categorical_matches_bruteforce(self):
        values = ["a", "b", "a", "c", "b", "b"]
        brute = sum(
            1
            for i in range(len(values))
            for j in range(i + 1, len(values))
            if values[i] != values[j]
        )
        assert pair_sum_categorical(values) == pytest.approx(brute)

    def test_categorical_all_equal(self):
        assert pair_sum_categorical(["x"] * 5) == 0


@pytest.fixture(scope="module")
def graph():
    b = GraphBuilder()
    b.node("m", genre="Action", rating=2.0, title="abc")
    b.node("m", genre="Action", rating=4.0, title="abd")
    b.node("m", genre="Drama", rating=6.0)  # Missing title.
    b.node("m", rating=10.0, title="zzz")  # Missing genre.
    return b.build()


class TestGowerTupleDistance:
    def test_identity(self, graph):
        d = GowerTupleDistance(graph, "m")
        assert d(0, 0) == 0.0

    def test_symmetric_and_cached(self, graph):
        d = GowerTupleDistance(graph, "m")
        assert d(0, 1) == d(1, 0)

    def test_value(self, graph):
        d = GowerTupleDistance(graph, "m", attributes=["genre", "rating"])
        # genre equal (0), rating |2-4|/8 = 0.25 → mean = 0.125.
        assert d(0, 1) == pytest.approx(0.125)

    def test_missing_one_side_is_max(self, graph):
        d = GowerTupleDistance(graph, "m", attributes=["genre"])
        assert d(0, 3) == 1.0

    def test_range(self, graph):
        d = GowerTupleDistance(graph, "m")
        for v in range(4):
            for w in range(4):
                assert 0.0 <= d(v, w) <= 1.0


class TestEditTupleDistance:
    def test_string_attribute_uses_levenshtein(self, graph):
        d = EditTupleDistance(graph, "m", attributes=["title"])
        # 'abc' vs 'abd': 1 edit over length 3.
        assert d(0, 1) == pytest.approx(1 / 3)

    def test_numeric_same_as_gower(self, graph):
        edit = EditTupleDistance(graph, "m", attributes=["rating"])
        gower = GowerTupleDistance(graph, "m", attributes=["rating"])
        assert edit(0, 1) == gower(0, 1)

    def test_gower_upper_bounds_edit_on_categoricals(self, graph):
        edit = EditTupleDistance(graph, "m", attributes=["title"])
        gower = GowerTupleDistance(graph, "m", attributes=["title"])
        for v in (0, 1):
            for w in (0, 1, 3):
                assert gower(v, w) >= edit(v, w) - 1e-12

    def test_no_attributes_distance_zero(self, graph):
        d = EditTupleDistance(graph, "m", attributes=[])
        assert d(0, 1) == 0.0
