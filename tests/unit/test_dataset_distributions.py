"""Statistical sanity checks on the dataset emulations.

The substitution argument in DESIGN.md rests on the emulations exhibiting
the skews the real graphs have (Zipfian categories, heavy-tailed degrees,
a configurable gender imbalance). These tests pin those properties.
"""

import pytest

from repro.datasets import build_cite, build_dbp, build_lki


@pytest.fixture(scope="module")
def dbp():
    return build_dbp(scale=0.3)


@pytest.fixture(scope="module")
def lki():
    return build_lki(scale=0.3)


@pytest.fixture(scope="module")
def cite():
    return build_cite(scale=0.3)


def value_counts(graph, label, attribute):
    counts = {}
    for node_id in graph.nodes_with_label(label):
        value = graph.attribute(node_id, attribute)
        counts[value] = counts.get(value, 0) + 1
    return counts


class TestDBPDistributions:
    def test_genres_zipf_skewed(self, dbp):
        counts = value_counts(dbp, "movie", "genre")
        assert counts["Action"] > counts.get("Animation", 0)
        # The top genre holds a clear plurality.
        total = sum(counts.values())
        assert counts["Action"] / total > 1.5 / len(counts)

    def test_actor_degrees_heavy_tailed(self, dbp):
        degrees = sorted(
            (dbp.out_degree(v) for v in dbp.nodes_with_label("actor")), reverse=True
        )
        # Preferential attachment: the busiest actor far exceeds the median.
        median = degrees[len(degrees) // 2]
        assert degrees[0] >= max(3, 2 * max(1, median))

    def test_ratings_within_range(self, dbp):
        for movie in dbp.nodes_with_label("movie"):
            assert 1.0 <= dbp.attribute(movie, "rating") <= 9.9


class TestLKIDistributions:
    def test_gender_ratio_near_55_45(self, lki):
        counts = value_counts(lki, "person", "gender")
        total = counts["M"] + counts["F"]
        assert 0.45 <= counts["M"] / total <= 0.65

    def test_director_title_present_in_bulk(self, lki):
        counts = value_counts(lki, "person", "title")
        assert counts.get("director", 0) >= 0.1 * sum(counts.values())

    def test_recommendation_in_degree_tail(self, lki):
        in_degrees = sorted(
            (len(lki.predecessors(v, "recommend")) for v in lki.nodes_with_label("person")),
            reverse=True,
        )
        median = in_degrees[len(in_degrees) // 2]
        assert in_degrees[0] >= max(4, 2 * max(1, median))

    def test_every_person_employed(self, lki):
        for person in lki.nodes_with_label("person"):
            assert len(lki.successors(person, "worksAt")) == 1


class TestCiteDistributions:
    def test_citation_counts_heavy_tailed(self, cite):
        citations = sorted(
            (cite.attribute(p, "numberOfCitations") for p in cite.nodes_with_label("paper")),
            reverse=True,
        )
        median = citations[len(citations) // 2]
        assert citations[0] >= max(5, 3 * max(1, median))

    def test_topics_skewed(self, cite):
        counts = value_counts(cite, "paper", "topic")
        ordered = sorted(counts.values(), reverse=True)
        assert ordered[0] > ordered[-1]

    def test_every_paper_has_venue_and_author(self, cite):
        for paper in cite.nodes_with_label("paper"):
            assert len(cite.successors(paper, "publishedIn")) == 1
            assert len(cite.successors(paper, "authoredBy")) >= 1
