"""Sanity tests on the exception hierarchy and the public API surface."""

import pytest

import repro
from repro import errors


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.GraphError,
            errors.QueryError,
            errors.VariableError,
            errors.ConfigurationError,
            errors.GroupError,
            errors.MatchingError,
            errors.DatasetError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_variable_error_is_query_error(self):
        assert issubclass(errors.VariableError, errors.QueryError)

    def test_catchall(self):
        with pytest.raises(errors.ReproError):
            raise errors.DatasetError("x")


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_key_entry_points_importable(self):
        from repro import (
            BiQGen,
            FairSQGSession,
            GenerationConfig,
            OnlineQGen,
            dataset_bundle,
        )

        assert callable(dataset_bundle)
        assert BiQGen.name == "BiQGen"
        assert OnlineQGen.name == "OnlineQGen"
