"""Unit tests for node groups and fairness helpers."""

import pytest

from repro.errors import GroupError
from repro.graph.builder import GraphBuilder
from repro.groups import (
    GroupSet,
    NodeGroup,
    disparate_impact_ratio,
    equal_opportunity_constraints,
    satisfies_eighty_percent_rule,
)
from repro.groups.fairness import proportional_constraints
from repro.groups.groups import groups_from_attribute


def make_groups():
    return GroupSet(
        [
            NodeGroup("M", frozenset({1, 2, 3}), 2),
            NodeGroup("F", frozenset({4, 5}), 1),
        ]
    )


class TestNodeGroup:
    def test_overlap(self):
        g = NodeGroup("x", frozenset({1, 2, 3}), 2)
        assert g.overlap({2, 3, 9}) == 2
        assert len(g) == 3

    def test_coverage_bounds(self):
        with pytest.raises(GroupError):
            NodeGroup("x", frozenset({1}), 2)
        with pytest.raises(GroupError):
            NodeGroup("x", frozenset({1}), -1)


class TestGroupSet:
    def test_basic_accessors(self):
        groups = make_groups()
        assert groups.names == ("M", "F")
        assert groups.total_coverage == 3
        assert len(groups) == 2
        assert groups["M"].coverage == 2
        with pytest.raises(GroupError):
            groups["ghost"]

    def test_disjointness_enforced(self):
        with pytest.raises(GroupError):
            GroupSet(
                [
                    NodeGroup("a", frozenset({1, 2}), 1),
                    NodeGroup("b", frozenset({2, 3}), 1),
                ]
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(GroupError):
            GroupSet(
                [
                    NodeGroup("a", frozenset({1}), 1),
                    NodeGroup("a", frozenset({2}), 1),
                ]
            )

    def test_empty_rejected(self):
        with pytest.raises(GroupError):
            GroupSet([])

    def test_feasibility_and_error(self):
        groups = make_groups()
        assert groups.is_feasible({1, 2, 4})
        assert not groups.is_feasible({1, 4})
        assert groups.coverage_error({1, 2, 4}) == 0
        assert groups.coverage_error({1, 2, 3, 4, 5}) == 2

    def test_overlaps(self):
        groups = make_groups()
        assert groups.overlaps({1, 4, 5, 99}) == {"M": 1, "F": 2}

    def test_with_constraints(self):
        groups = make_groups().with_constraints({"M": 3})
        assert groups["M"].coverage == 3
        assert groups["F"].coverage == 1


class TestGroupsFromAttribute:
    def test_induction(self):
        b = GraphBuilder()
        for genre in ["Action", "Action", "Drama", "Comedy"]:
            b.node("movie", genre=genre)
        b.node("person", genre="Action")  # Wrong label: excluded.
        graph = b.build()
        groups = groups_from_attribute(
            graph, "genre", {"Action": 1, "Drama": 1}, label="movie"
        )
        assert len(groups["Action"]) == 2
        assert len(groups["Drama"]) == 1

    def test_unconstrained_values_ignored(self):
        b = GraphBuilder()
        b.node("movie", genre="Horror")
        graph = b.build()
        groups = groups_from_attribute(graph, "genre", {"Horror": 1})
        assert groups.names == ("Horror",)


class TestFairnessHelpers:
    def test_equal_opportunity_even_split(self):
        groups = GroupSet(
            [
                NodeGroup("a", frozenset(range(0, 10)), 0),
                NodeGroup("b", frozenset(range(10, 20)), 0),
            ]
        )
        adjusted = equal_opportunity_constraints(groups, 10)
        assert adjusted["a"].coverage == 5
        assert adjusted["b"].coverage == 5

    def test_equal_opportunity_remainder(self):
        groups = GroupSet(
            [
                NodeGroup("a", frozenset(range(0, 10)), 0),
                NodeGroup("b", frozenset(range(10, 20)), 0),
                NodeGroup("c", frozenset(range(20, 30)), 0),
            ]
        )
        adjusted = equal_opportunity_constraints(groups, 10)
        assert [adjusted[n].coverage for n in "abc"] == [4, 3, 3]

    def test_equal_opportunity_infeasible_share(self):
        groups = GroupSet(
            [
                NodeGroup("a", frozenset({1}), 0),
                NodeGroup("b", frozenset(range(10, 20)), 0),
            ]
        )
        with pytest.raises(GroupError):
            equal_opportunity_constraints(groups, 10)

    def test_disparate_impact(self):
        assert disparate_impact_ratio({"m": 10, "f": 8}) == pytest.approx(0.8)
        assert disparate_impact_ratio({"m": 10, "f": 0}) == 0.0
        assert disparate_impact_ratio({"m": 0, "f": 0}) == 1.0
        with pytest.raises(GroupError):
            disparate_impact_ratio({})

    def test_eighty_percent_rule(self):
        assert satisfies_eighty_percent_rule({"m": 10, "f": 8})
        assert not satisfies_eighty_percent_rule({"m": 10, "f": 7})

    def test_proportional_constraints(self):
        groups = GroupSet(
            [
                NodeGroup("big", frozenset(range(0, 30)), 0),
                NodeGroup("small", frozenset(range(30, 40)), 0),
            ]
        )
        adjusted = proportional_constraints(groups, 8)
        assert adjusted["big"].coverage == 6
        assert adjusted["small"].coverage == 2
