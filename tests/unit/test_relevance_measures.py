"""Unit tests for relevance scorers and the diversity/coverage measures."""

import pytest

from repro.core.distance import EditTupleDistance, GowerTupleDistance
from repro.core.measures import CoverageMeasure, DiversityMeasure
from repro.core.relevance import AttributeRelevance, ConstantRelevance, DegreeRelevance
from repro.errors import ConfigurationError
from repro.graph.builder import GraphBuilder
from repro.groups.groups import GroupSet, NodeGroup


@pytest.fixture(scope="module")
def graph():
    b = GraphBuilder()
    hub = b.node("m", rating=10.0, genre="Action")
    n1 = b.node("m", rating=5.0, genre="Drama")
    n2 = b.node("m", rating=0.0, genre="Action")
    n3 = b.node("m", rating=7.5, genre="Comedy")
    iso = b.node("m", rating=2.5, genre="Drama")
    for target in (n1, n2, n3):
        b.edge(hub, target, "rel")
    b.edge(n1, n2, "rel")
    return b.build()


class TestRelevance:
    def test_constant(self):
        assert ConstantRelevance(0.7)(123) == 0.7
        with pytest.raises(ValueError):
            ConstantRelevance(1.5)

    def test_degree_normalized(self, graph):
        r = DegreeRelevance(graph, "m")
        assert r(0) == 1.0  # The hub has max degree.
        assert r(4) == 0.0  # The isolated node.
        assert 0 < r(1) < 1

    def test_attribute_relevance(self, graph):
        r = AttributeRelevance(graph, "m", "rating")
        assert r(0) == 1.0
        assert r(2) == 0.0
        assert r(1) == pytest.approx(0.5)

    def test_attribute_relevance_missing(self, graph):
        r = AttributeRelevance(graph, "m", "nonexistent")
        assert r(0) == 0.0


class TestDiversityMeasure:
    def test_empty_answer_is_zero(self, graph):
        m = DiversityMeasure(graph, "m")
        assert m.of(set()) == 0.0

    def test_lambda_zero_is_pure_relevance(self, graph):
        m = DiversityMeasure(graph, "m", lam=0.0, relevance=ConstantRelevance(1.0))
        assert m.of({0, 1, 2}) == pytest.approx(3.0)

    def test_lambda_one_is_pure_dissimilarity(self, graph):
        m = DiversityMeasure(graph, "m", lam=1.0)
        singleton = m.of({0})
        assert singleton == 0.0  # No pairs, no relevance term.

    def test_monotone_in_answer_size(self, graph):
        m = DiversityMeasure(graph, "m", lam=0.5)
        assert m.of({0, 1}) <= m.of({0, 1, 2})

    def test_upper_bound_respected(self, graph):
        m = DiversityMeasure(graph, "m", lam=0.5)
        value = m.of(set(range(5)))
        assert 0.0 <= value <= m.upper_bound == 5.0

    def test_exact_and_decomposed_agree(self, graph):
        kernel = GowerTupleDistance(graph, "m")
        exact = DiversityMeasure(graph, "m", lam=0.7, distance=kernel, mode="exact")
        fast = DiversityMeasure(graph, "m", lam=0.7, mode="decomposed")
        answer = {0, 1, 2, 3, 4}
        assert exact.of(answer) == pytest.approx(fast.of(answer))

    def test_decomposed_requires_gower(self, graph):
        with pytest.raises(ConfigurationError):
            DiversityMeasure(
                graph, "m", distance=EditTupleDistance(graph, "m"), mode="decomposed"
            )

    def test_invalid_lambda(self, graph):
        with pytest.raises(ConfigurationError):
            DiversityMeasure(graph, "m", lam=1.5)

    def test_invalid_mode(self, graph):
        with pytest.raises(ConfigurationError):
            DiversityMeasure(graph, "m", mode="bogus")

    def test_duplicates_collapsed(self, graph):
        m = DiversityMeasure(graph, "m")
        assert m.of([0, 0, 1]) == m.of({0, 1})


class TestCoverageMeasure:
    @pytest.fixture()
    def groups(self):
        return GroupSet(
            [
                NodeGroup("A", frozenset({0, 2}), 1),
                NodeGroup("B", frozenset({1, 4}), 1),
            ]
        )

    def test_perfect_coverage(self, groups):
        m = CoverageMeasure(groups)
        assert m.upper_bound == 2
        assert m.of({0, 1}) == 2.0
        assert m.is_feasible({0, 1})

    def test_overshoot_penalized(self, groups):
        m = CoverageMeasure(groups)
        assert m.of({0, 2, 1}) == 1.0  # |A∩|=2 (err 1), |B∩|=1 (err 0).

    def test_undershoot_infeasible_but_scored(self, groups):
        m = CoverageMeasure(groups)
        assert not m.is_feasible({0})
        assert m.of({0}) == 1.0  # err A=0, err B=1.

    def test_clamped_at_zero(self, groups):
        m = CoverageMeasure(groups)
        assert m.of({0, 2, 1, 4}) == 0.0  # Both groups overshoot by 1... err=2 → 0.

    def test_overlaps(self, groups):
        m = CoverageMeasure(groups)
        assert m.overlaps({0, 1, 2}) == {"A": 2, "B": 1}
