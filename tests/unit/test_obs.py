"""Unit tests for the observability layer (repro.obs)."""

from __future__ import annotations

import json

import pytest

from repro.matching import IncrementalVerifier, SubgraphMatcher
from repro.obs import (
    MetricsRegistry,
    collecting,
    compare_counters,
    counters_matching,
    current_registry,
    load_baseline,
    load_snapshot,
    save_baseline,
    to_prometheus,
    trace,
    within_tolerance,
    write_json,
    write_prometheus,
)
from repro.query import Instantiation, QueryInstance


class FakeClock:
    """Deterministic clock: each reading advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        reading = self.now
        self.now += self.step
        return reading


class TestRegistry:
    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.inc("c", -1)

    def test_value_of_untouched_counter_is_zero(self):
        assert MetricsRegistry().value("never") == 0

    def test_timer_uses_injected_clock(self):
        registry = MetricsRegistry(clock=FakeClock(step=2.5))
        with registry.timer("op"):
            pass
        histogram = registry.histogram("op")
        assert histogram.count == 1
        assert histogram.summary()["max"] == 2.5

    def test_trace_records_spans_with_depth(self):
        registry = MetricsRegistry(clock=FakeClock())
        with registry.trace("outer"):
            with registry.trace("inner"):
                pass
        names = [(s.name, s.depth) for s in registry.spans]
        assert names == [("inner", 2), ("outer", 1)]
        assert "span.outer" in registry.snapshot()["histograms"]

    def test_reset_prefix_is_scoped(self):
        registry = MetricsRegistry()
        registry.inc("evaluator.cache_hits", 3)
        registry.inc("matcher.backtrack_calls", 7)
        registry.reset("evaluator.")
        assert "evaluator.cache_hits" not in registry.counters()
        assert registry.value("matcher.backtrack_calls") == 7

    def test_counters_matching(self):
        registry = MetricsRegistry()
        registry.inc("gen.biqgen.pruned", 2)
        registry.inc("matcher.match_calls", 1)
        subset = counters_matching(registry.counters(), "gen.")
        assert subset == {"gen.biqgen.pruned": 2}


class TestAmbient:
    def test_collecting_nests_and_restores(self):
        assert current_registry() is None
        outer = MetricsRegistry()
        with collecting(outer):
            assert current_registry() is outer
            with collecting() as inner:
                assert current_registry() is inner
            assert current_registry() is outer
        assert current_registry() is None

    def test_module_trace_targets_ambient(self):
        registry = MetricsRegistry()
        with collecting(registry):
            with trace("unit.block"):
                pass
        assert "span.unit.block" in registry.snapshot()["histograms"]


class TestExporters:
    def test_prometheus_rendering(self):
        registry = MetricsRegistry(clock=FakeClock())
        registry.inc("matcher.backtrack_calls", 4)
        registry.set("gen.biqgen.final_epsilon", 0.25)
        registry.observe("pool.size", 10.0)
        text = to_prometheus(registry)
        assert "fairsqg_matcher_backtrack_calls_total 4" in text
        assert "fairsqg_gen_biqgen_final_epsilon 0.25" in text
        assert 'fairsqg_pool_size{quantile="0.50"} 10.0' in text
        assert "fairsqg_pool_size_count 1" in text

    def test_json_write_and_load(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("a.b", 5)
        path = write_json(registry, tmp_path / "snap.json")
        snapshot = load_snapshot(path)
        assert snapshot["counters"] == {"a.b": 5}

    def test_prometheus_write(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("a.b", 5)
        path = write_prometheus(registry, tmp_path / "snap.prom")
        assert "fairsqg_a_b_total 5" in path.read_text()


class TestBaselines:
    def test_within_tolerance_relative_and_floor(self):
        assert within_tolerance(100, 105, 0.05)
        assert not within_tolerance(100, 106, 0.05)
        # Tiny counters get an absolute ±1 floor.
        assert within_tolerance(2, 3, 0.05)
        assert not within_tolerance(2, 4, 0.05)

    def test_compare_flags_missing_and_drifted(self):
        baseline = {"kept": 10, "drifted": 100, "missing": 5}
        actual = {"kept": 10, "drifted": 150}
        report = compare_counters(actual, baseline, tolerance=0.05)
        assert not report.ok
        assert {m.name for m in report.mismatches} == {"drifted", "missing"}
        assert "drifted" in report.describe()

    def test_extra_actual_counters_ignored(self):
        report = compare_counters({"a": 1, "new": 99}, {"a": 1})
        assert report.ok

    def test_save_load_roundtrip(self, tmp_path):
        path = save_baseline(tmp_path / "b.json", {"x": 3}, tolerance=0.1)
        loaded = load_baseline(path)
        assert loaded["tolerance"] == 0.1
        assert loaded["counters"] == {"x": 3}
        # The on-disk form is the documented shape.
        raw = json.loads(path.read_text())
        assert set(raw) == {"tolerance", "counters"}


def _make(template, **bindings):
    return QueryInstance(Instantiation(template, bindings))


class TestVerifierLRUBound:
    def test_eviction_and_counter(self, talent_graph, talent_template):
        registry = MetricsRegistry()
        verifier = IncrementalVerifier(
            SubgraphMatcher(talent_graph), metrics=registry, max_entries=2
        )
        q1 = _make(talent_template, xl1=5, xl2=100, xe1=0)
        q2 = _make(talent_template, xl1=12, xl2=100, xe1=0)
        q3 = _make(talent_template, xl1=5, xl2=1000, xe1=0)
        verifier.verify(q1)
        verifier.verify(q2)
        assert len(verifier) == 2
        verifier.verify(q3)  # Evicts q1 (least recently used).
        assert len(verifier) == 2
        assert verifier.evictions == 1
        assert registry.value("evaluator.evictions") == 1
        assert verifier.peek(q1) is None
        assert verifier.peek(q2) is not None

    def test_hit_refreshes_recency(self, talent_graph, talent_template):
        verifier = IncrementalVerifier(
            SubgraphMatcher(talent_graph), max_entries=2
        )
        q1 = _make(talent_template, xl1=5, xl2=100, xe1=0)
        q2 = _make(talent_template, xl1=12, xl2=100, xe1=0)
        q3 = _make(talent_template, xl1=5, xl2=1000, xe1=0)
        verifier.verify(q1)
        verifier.verify(q2)
        verifier.verify(q1)  # Touch q1 so q2 becomes the LRU entry.
        verifier.verify(q3)
        assert verifier.peek(q1) is not None
        assert verifier.peek(q2) is None

    def test_results_unchanged_by_bound(self, talent_graph, talent_template):
        bounded = IncrementalVerifier(SubgraphMatcher(talent_graph), max_entries=1)
        unbounded = IncrementalVerifier(SubgraphMatcher(talent_graph))
        instances = [
            _make(talent_template, xl1=xl1, xl2=xl2, xe1=xe1)
            for xl1 in (5, 12)
            for xl2 in (100, 1000)
            for xe1 in (0, 1)
        ]
        for q in instances:
            assert bounded.verify(q).matches == unbounded.verify(q).matches

    def test_unbounded_never_evicts(self, talent_graph, talent_template):
        verifier = IncrementalVerifier(SubgraphMatcher(talent_graph))
        for xl1 in (5, 12):
            verifier.verify(_make(talent_template, xl1=xl1, xl2=100, xe1=0))
        assert verifier.evictions == 0
        assert len(verifier) == 2
