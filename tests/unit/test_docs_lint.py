"""Tests for tools/docs_lint.py — and the gate that the docs stay clean."""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "docs_lint", REPO_ROOT / "tools" / "docs_lint.py"
)
docs_lint = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(docs_lint)


def lint_text(tmp_path, text, name="page.md"):
    path = tmp_path / name
    path.write_text(text)
    return docs_lint.lint_file(path)


class TestLinks:
    def test_dead_relative_link_reported(self, tmp_path):
        findings = lint_text(tmp_path, "See [here](missing.md) for more.\n")
        assert len(findings) == 1
        assert "dead relative link: missing.md" in str(findings[0])
        assert findings[0].line == 1

    def test_existing_relative_link_ok(self, tmp_path):
        (tmp_path / "other.md").write_text("# other\n")
        assert lint_text(tmp_path, "See [here](other.md).\n") == []

    def test_anchor_and_query_stripped(self, tmp_path):
        (tmp_path / "other.md").write_text("# other\n")
        assert lint_text(tmp_path, "[a](other.md#section), [b](#local)\n") == []
        assert lint_text(tmp_path, "[gone](missing.md#section)\n") != []

    def test_absolute_urls_skipped(self, tmp_path):
        text = "[x](https://example.com/a.md) [y](mailto:a@b.c)\n"
        assert lint_text(tmp_path, text) == []

    def test_links_inside_fences_ignored(self, tmp_path):
        text = "```\n[dead](nope.md)\n```\n"
        assert lint_text(tmp_path, text) == []

    def test_subdirectory_resolution(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "page.md").write_text("[up](../real.md)\n")
        (tmp_path / "real.md").write_text("x\n")
        assert docs_lint.lint_file(tmp_path / "docs" / "page.md") == []


class TestFences:
    def test_broken_python_fence_reported(self, tmp_path):
        text = "intro\n\n```python\ndef broken(:\n    pass\n```\n"
        findings = lint_text(tmp_path, text)
        assert len(findings) == 1
        assert "python fence does not parse" in str(findings[0])
        assert findings[0].line == 4  # points at the offending line

    def test_valid_python_fence_ok(self, tmp_path):
        text = "```python\nfrom x import y\nprint(y(1))\n```\n"
        assert lint_text(tmp_path, text) == []

    def test_non_python_fences_ignored(self, tmp_path):
        text = "```bash\nthis is not python (\n```\n\n```\nplain: text:\n```\n"
        assert lint_text(tmp_path, text) == []


class TestCli:
    def test_missing_file_is_a_finding(self, tmp_path):
        findings = docs_lint.lint([tmp_path / "absent.md"])
        assert len(findings) == 1

    def test_main_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.md"
        good.write_text("fine\n")
        assert docs_lint.main([str(good)]) == 0
        bad = tmp_path / "bad.md"
        bad.write_text("[x](gone.md)\n")
        assert docs_lint.main([str(bad)]) == 1
        assert "dead relative link" in capsys.readouterr().out


def crossref_text(tmp_path, text, catalog):
    path = tmp_path / "observability.md"
    path.write_text(text)
    return docs_lint.check_metric_crossref(path, catalog=catalog)


_TABLE = """# Obs

## Metric namespace

| Prefix | Component | Headline metrics |
|---|---|---|
| `matcher.*` | `SubgraphMatcher` | `match_calls`, `backtrack_calls` |
| `gen.<algo>.*` | generators | `generated`; BiQGen adds `pruned_sandwich` |
| `service.requests.rejected` | lenient parsing | skipped lines |

## Something else

`ghost.counter` outside the section is ignored.
"""

_CATALOG = [
    "matcher.match_calls",
    "matcher.backtrack_calls",
    "gen.*.generated",
    "gen.biqgen.pruned_sandwich",
    "service.requests.rejected",
]


class TestMetricCrossRef:
    def test_clean_table_has_no_findings(self, tmp_path):
        assert crossref_text(tmp_path, _TABLE, _CATALOG) == []

    def test_documented_metric_missing_from_catalog(self, tmp_path):
        text = _TABLE.replace("`backtrack_calls`", "`backtrack_callz`")
        findings = crossref_text(tmp_path, text, _CATALOG)
        # Forward: the typo'd token resolves nowhere. (Reverse stays
        # quiet — the row's `matcher.*` prefix still covers the real
        # counter's namespace.)
        assert len(findings) == 1
        assert "backtrack_callz" in str(findings[0])
        assert findings[0].line == 7

    def test_catalog_metric_missing_from_docs(self, tmp_path):
        findings = crossref_text(
            tmp_path, _TABLE, _CATALOG + ["groups.systems_built"]
        )
        assert len(findings) == 1
        assert "groups.systems_built" in str(findings[0])
        assert "no row" in str(findings[0])

    def test_placeholder_segments_become_wildcards(self, tmp_path):
        # gen.<algo>.* must cover gen.biqgen.pruned_sandwich even though
        # the suffix only appears via the row's description cell.
        findings = crossref_text(tmp_path, _TABLE, _CATALOG)
        assert findings == []

    def test_non_metric_backticks_ignored(self, tmp_path):
        text = _TABLE.replace(
            "skipped lines",
            "skipped by `iter_requests_jsonl()` at `--strict` / "
            "`GenerationConfig.knob` / `repro.service` level",
        )
        assert crossref_text(tmp_path, text, _CATALOG) == []

    def test_tokens_outside_the_section_ignored(self, tmp_path):
        # `ghost.counter` after the next ## heading produced no finding.
        assert crossref_text(tmp_path, _TABLE, _CATALOG) == []

    def test_partial_segment_wildcard_prefixes_namespace(self, tmp_path):
        text = _TABLE.replace(
            "| `service.requests.rejected` | lenient parsing | skipped lines |",
            "| `runtime.worker_*` | scheduler | `worker_timeouts` |",
        )
        catalog = _CATALOG[:-1] + ["runtime.worker_timeouts"]
        assert crossref_text(tmp_path, text, catalog) == []

    def test_main_cross_ref_flag(self, tmp_path, capsys):
        page = tmp_path / "observability.md"
        page.write_text(_TABLE)
        # The flag routes through the real repo catalog, whose many
        # namespaces the toy table does not cover — exit 1, reverse
        # findings printed.
        assert docs_lint.main(["--cross-ref", str(page)]) == 1
        assert "no row in" in capsys.readouterr().out

    def test_repo_catalog_loads(self):
        catalog = docs_lint._load_catalog()
        assert "groups.systems_built" in catalog
        assert any(entry.startswith("gen.") for entry in catalog)


class TestRepositoryDocs:
    def test_readme_and_docs_are_clean(self):
        """The actual gate: every shipped doc page lints clean."""
        findings = docs_lint.lint(docs_lint.default_files())
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_observability_cross_references_the_catalog(self):
        """The second gate: the metric table and the catalog agree."""
        findings = docs_lint.check_metric_crossref(
            docs_lint.REPO_ROOT / "docs" / "observability.md"
        )
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_default_files_cover_the_doc_pages(self):
        names = {p.name for p in docs_lint.default_files()}
        assert "README.md" in names
        assert {"architecture.md", "fairness.md", "serving.md", "usage.md",
                "observability.md", "theory.md"} <= names
