"""Tests for tools/docs_lint.py — and the gate that the docs stay clean."""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "docs_lint", REPO_ROOT / "tools" / "docs_lint.py"
)
docs_lint = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(docs_lint)


def lint_text(tmp_path, text, name="page.md"):
    path = tmp_path / name
    path.write_text(text)
    return docs_lint.lint_file(path)


class TestLinks:
    def test_dead_relative_link_reported(self, tmp_path):
        findings = lint_text(tmp_path, "See [here](missing.md) for more.\n")
        assert len(findings) == 1
        assert "dead relative link: missing.md" in str(findings[0])
        assert findings[0].line == 1

    def test_existing_relative_link_ok(self, tmp_path):
        (tmp_path / "other.md").write_text("# other\n")
        assert lint_text(tmp_path, "See [here](other.md).\n") == []

    def test_anchor_and_query_stripped(self, tmp_path):
        (tmp_path / "other.md").write_text("# other\n")
        assert lint_text(tmp_path, "[a](other.md#section), [b](#local)\n") == []
        assert lint_text(tmp_path, "[gone](missing.md#section)\n") != []

    def test_absolute_urls_skipped(self, tmp_path):
        text = "[x](https://example.com/a.md) [y](mailto:a@b.c)\n"
        assert lint_text(tmp_path, text) == []

    def test_links_inside_fences_ignored(self, tmp_path):
        text = "```\n[dead](nope.md)\n```\n"
        assert lint_text(tmp_path, text) == []

    def test_subdirectory_resolution(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "page.md").write_text("[up](../real.md)\n")
        (tmp_path / "real.md").write_text("x\n")
        assert docs_lint.lint_file(tmp_path / "docs" / "page.md") == []


class TestFences:
    def test_broken_python_fence_reported(self, tmp_path):
        text = "intro\n\n```python\ndef broken(:\n    pass\n```\n"
        findings = lint_text(tmp_path, text)
        assert len(findings) == 1
        assert "python fence does not parse" in str(findings[0])
        assert findings[0].line == 4  # points at the offending line

    def test_valid_python_fence_ok(self, tmp_path):
        text = "```python\nfrom x import y\nprint(y(1))\n```\n"
        assert lint_text(tmp_path, text) == []

    def test_non_python_fences_ignored(self, tmp_path):
        text = "```bash\nthis is not python (\n```\n\n```\nplain: text:\n```\n"
        assert lint_text(tmp_path, text) == []


class TestCli:
    def test_missing_file_is_a_finding(self, tmp_path):
        findings = docs_lint.lint([tmp_path / "absent.md"])
        assert len(findings) == 1

    def test_main_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.md"
        good.write_text("fine\n")
        assert docs_lint.main([str(good)]) == 0
        bad = tmp_path / "bad.md"
        bad.write_text("[x](gone.md)\n")
        assert docs_lint.main([str(bad)]) == 1
        assert "dead relative link" in capsys.readouterr().out


class TestRepositoryDocs:
    def test_readme_and_docs_are_clean(self):
        """The actual gate: every shipped doc page lints clean."""
        findings = docs_lint.lint(docs_lint.default_files())
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_default_files_cover_the_doc_pages(self):
        names = {p.name for p in docs_lint.default_files()}
        assert "README.md" in names
        assert {"architecture.md", "serving.md", "usage.md",
                "observability.md", "theory.md"} <= names
