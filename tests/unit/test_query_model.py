"""Unit tests for predicates, variables, templates, instantiations, instances."""

import pytest

from repro.errors import QueryError, VariableError
from repro.query import (
    EdgeVariable,
    Instantiation,
    Literal,
    Op,
    QueryInstance,
    QueryTemplate,
    RangeVariable,
    WILDCARD,
)


class TestOp:
    @pytest.mark.parametrize(
        "op,value,constant,expected",
        [
            (Op.GT, 5, 4, True),
            (Op.GT, 4, 4, False),
            (Op.GE, 4, 4, True),
            (Op.EQ, "a", "a", True),
            (Op.LE, 3, 4, True),
            (Op.LT, 4, 4, False),
        ],
    )
    def test_evaluate(self, op, value, constant, expected):
        assert op.evaluate(value, constant) is expected

    def test_none_never_matches(self):
        for op in Op:
            assert op.evaluate(None, 1) is False

    def test_type_mismatch_never_matches(self):
        assert Op.GT.evaluate("abc", 5) is False

    def test_refine_direction(self):
        assert Op.GT.refine_direction == 1
        assert Op.GE.refine_direction == 1
        assert Op.LT.refine_direction == -1
        assert Op.LE.refine_direction == -1
        assert Op.EQ.refine_direction == 0

    def test_parse(self):
        assert Op.parse(">=") is Op.GE
        assert Op.parse("==") is Op.EQ
        with pytest.raises(ValueError):
            Op.parse("<>")


class TestLiteral:
    def test_holds_for(self):
        lit = Literal("age", Op.GE, 18)
        assert lit.holds_for(20)
        assert not lit.holds_for(17)
        assert not lit.holds_for(None)

    def test_str(self):
        assert str(Literal("age", Op.GE, 18)) == "age >= 18"


class TestRangeVariable:
    def test_refinement_sorted_ge(self):
        var = RangeVariable("x", "u", "age", Op.GE)
        assert var.refinement_sorted((30, 10, 20)) == (10, 20, 30)

    def test_refinement_sorted_le(self):
        var = RangeVariable("x", "u", "age", Op.LE)
        assert var.refinement_sorted((30, 10, 20)) == (30, 20, 10)

    def test_refines_value_ge(self):
        var = RangeVariable("x", "u", "age", Op.GE)
        assert var.refines_value(20, 10)
        assert var.refines_value(10, 10)
        assert not var.refines_value(5, 10)

    def test_refines_value_le(self):
        var = RangeVariable("x", "u", "age", Op.LE)
        assert var.refines_value(5, 10)
        assert not var.refines_value(20, 10)

    def test_wildcard_rules(self):
        var = RangeVariable("x", "u", "age", Op.GE)
        assert var.refines_value(10, WILDCARD)
        assert var.refines_value(WILDCARD, WILDCARD)
        assert not var.refines_value(WILDCARD, 10)

    def test_eq_only_refines_itself(self):
        var = RangeVariable("x", "u", "age", Op.EQ)
        assert var.refines_value(10, 10)
        assert not var.refines_value(11, 10)


class TestEdgeVariable:
    def test_one_refines_zero(self):
        var = EdgeVariable("xe", "u1", "u0", "knows")
        assert var.refines_value(1, 0)
        assert var.refines_value(1, 1)
        assert not var.refines_value(0, 1)
        assert var.refines_value(0, WILDCARD)


def build_template():
    return (
        QueryTemplate.builder("t")
        .node("u0", "person", Literal("title", Op.EQ, "director"))
        .node("u1", "person")
        .node("u2", "org")
        .fixed_edge("u1", "u0", "recommend")
        .edge_var("xe1", "u1", "u2", "worksAt")
        .range_var("xl1", "u1", "age", Op.GE)
        .output("u0")
        .build()
    )


class TestTemplate:
    def test_counts(self):
        t = build_template()
        assert t.num_range_variables == 1
        assert t.num_edge_variables == 1
        assert t.num_variables == 2
        assert t.size == 2
        assert t.variable_names() == ("xl1", "xe1")

    def test_variable_lookup(self):
        t = build_template()
        assert t.variable("xl1").attribute == "age"
        assert t.variable("xe1").label == "worksAt"
        with pytest.raises(VariableError):
            t.variable("nope")

    def test_requires_output(self):
        with pytest.raises(QueryError):
            QueryTemplate.builder("x").node("u0", "a").build()

    def test_output_must_exist(self):
        with pytest.raises(QueryError):
            (
                QueryTemplate.builder("x")
                .node("u0", "a")
                .output("zz")
                .build()
            )

    def test_connectivity_required(self):
        with pytest.raises(QueryError):
            (
                QueryTemplate.builder("x")
                .node("u0", "a")
                .node("u1", "a")  # Disconnected.
                .output("u0")
                .build()
            )

    def test_unknown_edge_endpoint(self):
        with pytest.raises(QueryError):
            (
                QueryTemplate.builder("x")
                .node("u0", "a")
                .fixed_edge("u0", "zz", "e")
                .output("u0")
                .build()
            )

    def test_duplicate_variable_names_rejected(self):
        with pytest.raises(QueryError):
            (
                QueryTemplate.builder("x")
                .node("u0", "a")
                .node("u1", "a")
                .fixed_edge("u1", "u0", "e")
                .range_var("v", "u0", "age", Op.GE)
                .edge_var("v", "u1", "u0", "e2")
                .output("u0")
                .build()
            )

    def test_diameter(self):
        t = build_template()
        # u2 - u1 - u0 is a path of length 2.
        assert t.diameter() == 2

    def test_is_bridge(self):
        t = build_template()
        assert t.is_bridge(("u1", "u0", "recommend"))
        assert t.is_bridge(("u1", "u2", "worksAt"))

    def test_range_variables_on(self):
        t = build_template()
        assert [v.name for v in t.range_variables_on("u1")] == ["xl1"]
        assert t.range_variables_on("u0") == []


class TestInstantiation:
    def test_defaults_to_wildcard(self):
        t = build_template()
        inst = Instantiation(t)
        assert inst["xl1"] == WILDCARD
        assert not inst.is_total()
        assert inst.wildcard_variables() == ("xl1", "xe1")

    def test_unknown_variable_rejected(self):
        t = build_template()
        with pytest.raises(VariableError):
            Instantiation(t, {"ghost": 1})

    def test_bind_returns_copy(self):
        t = build_template()
        a = Instantiation(t, {"xl1": 10})
        b = a.bind(xl1=20)
        assert a["xl1"] == 10 and b["xl1"] == 20

    def test_equality_and_hash(self):
        t = build_template()
        a = Instantiation(t, {"xl1": 10, "xe1": 1})
        b = Instantiation(t, {"xe1": 1, "xl1": 10})
        assert a == b
        assert hash(a) == hash(b)
        assert a != Instantiation(t, {"xl1": 11, "xe1": 1})

    def test_mapping_protocol(self):
        t = build_template()
        inst = Instantiation(t, {"xl1": 10})
        assert len(inst) == 2
        assert set(inst) == {"xl1", "xe1"}


class TestQueryInstance:
    def test_total_instance_keeps_all(self):
        t = build_template()
        q = QueryInstance(Instantiation(t, {"xl1": 10, "xe1": 1}))
        assert q.active_nodes == {"u0", "u1", "u2"}
        assert set(q.edges) == {("u1", "u0", "recommend"), ("u1", "u2", "worksAt")}
        literals = q.literals_on("u1")
        assert len(literals) == 1 and literals[0].constant == 10

    def test_disabled_edge_drops_component(self):
        t = build_template()
        q = QueryInstance(Instantiation(t, {"xl1": 10, "xe1": 0}))
        # u2 hangs off the disabled optional edge: dropped.
        assert q.active_nodes == {"u0", "u1"}
        assert set(q.edges) == {("u1", "u0", "recommend")}

    def test_wildcard_range_var_drops_literal(self):
        t = build_template()
        q = QueryInstance(Instantiation(t, {"xe1": 1}))
        assert q.literals_on("u1") == ()

    def test_wildcard_edge_var_reads_as_absent(self):
        t = build_template()
        q = QueryInstance(Instantiation(t))
        assert q.active_nodes == {"u0", "u1"}

    def test_fixed_literals_kept(self):
        t = build_template()
        q = QueryInstance(Instantiation(t))
        assert [l.constant for l in q.literals_on("u0")] == ["director"]

    def test_describe_mentions_output(self):
        t = build_template()
        q = QueryInstance(Instantiation(t, {"xl1": 10, "xe1": 1}))
        text = q.describe()
        assert "u0" in text and "recommend" in text

    def test_equality(self):
        t = build_template()
        a = QueryInstance(Instantiation(t, {"xl1": 10}))
        b = QueryInstance(Instantiation(t, {"xl1": 10}))
        assert a == b and hash(a) == hash(b)
