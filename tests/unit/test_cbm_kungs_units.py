"""Focused unit tests for the CBM sweep and the Kungs baseline internals."""

import pytest

from repro.core.cbm import CBM
from repro.core.kungs import Kungs


class FakeEvaluated:
    def __init__(self, delta, coverage, tag):
        self.delta = delta
        self.coverage = coverage
        self.feasible = True
        self.instance = _FakeInstance(tag)

    def __repr__(self):
        return f"F({self.delta},{self.coverage})"


class _FakeInstance:
    def __init__(self, tag):
        self.instantiation = _FakeInstantiation(tag)


class _FakeInstantiation:
    def __init__(self, tag):
        self.key = tag


class TestConstrainedMax:
    def test_picks_best_delta_above_threshold(self):
        pool = [
            FakeEvaluated(10, 1, "a"),
            FakeEvaluated(8, 5, "b"),
            FakeEvaluated(2, 9, "c"),
        ]
        best = CBM._constrained_max(pool, threshold=4)
        assert best.instance.instantiation.key == "b"

    def test_no_candidate_above_threshold(self):
        pool = [FakeEvaluated(10, 1, "a")]
        assert CBM._constrained_max(pool, threshold=5) is None

    def test_tie_broken_by_coverage(self):
        pool = [FakeEvaluated(5, 2, "low"), FakeEvaluated(5, 4, "high")]
        best = CBM._constrained_max(pool, threshold=0)
        assert best.instance.instantiation.key == "high"


class TestCbmSweep:
    def make_cbm(self, small_lki_config, levels):
        return CBM(small_lki_config, levels=levels)

    def test_sweep_returns_non_dominated(self, small_lki_config):
        cbm = self.make_cbm(small_lki_config, levels=4)
        pool = [
            FakeEvaluated(10, 1, "a"),
            FakeEvaluated(8, 5, "b"),
            FakeEvaluated(2, 9, "c"),
            FakeEvaluated(1, 1, "dominated"),
        ]
        picked = cbm._sweep(pool)
        keys = {p.instance.instantiation.key for p in picked}
        assert "dominated" not in keys
        assert {"a", "c"} <= keys  # Both anchors present.

    def test_sweep_single_point(self, small_lki_config):
        cbm = self.make_cbm(small_lki_config, levels=4)
        only = FakeEvaluated(3, 3, "solo")
        picked = cbm._sweep([only])
        assert len(picked) == 1

    def test_levels_clamped_to_one(self, small_lki_config):
        cbm = CBM(small_lki_config, levels=0)
        assert cbm.levels == 1


class TestKungsResult:
    def test_epsilon_reported_zero(self, small_lki_config):
        result = Kungs(small_lki_config).run()
        assert result.epsilon == 0.0  # Exact front: no tolerance consumed.

    def test_front_sorted(self, small_lki_config):
        result = Kungs(small_lki_config).run()
        deltas = [p.delta for p in result.instances]
        assert deltas == sorted(deltas, reverse=True)
