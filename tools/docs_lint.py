#!/usr/bin/env python3
"""Documentation linter: dead relative links and broken python fences.

Two checks, both cheap enough for every CI run:

1. **Relative links** — every ``[text](target)`` whose target is not an
   absolute URL or a pure in-page anchor must point at an existing file
   (anchors/query strings are stripped first; targets are resolved
   relative to the markdown file's directory).
2. **Python fences** — every ```python code block must parse
   (``ast.parse``), so rotted examples fail CI instead of readers.

Links inside code fences are ignored (they are examples, not links).

Usage::

    python tools/docs_lint.py                # lint README.md + docs/*.md
    python tools/docs_lint.py path/to.md ... # lint specific files

Exits 1 if any finding is reported, printing one ``file:line: message``
per finding.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import List, NamedTuple, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links: [text](target). Images ride along via the [
#: in their ![alt] prefix.
_LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")
_FENCE_RE = re.compile(r"^\s*```(\S*)\s*$")
_SCHEME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


class Finding(NamedTuple):
    path: Path
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.message}"


def default_files() -> List[Path]:
    """The pages this linter gates: the README and everything in docs/."""
    return [REPO_ROOT / "README.md"] + sorted((REPO_ROOT / "docs").glob("*.md"))


def _segments(text: str) -> Tuple[List[Tuple[int, str]], List[Tuple[int, str, str]]]:
    """Split markdown into prose lines and fenced code blocks.

    Returns ``(prose, fences)`` where prose is ``[(lineno, line)]``
    outside fences and fences is ``[(start_lineno, language, code)]``.
    """
    prose: List[Tuple[int, str]] = []
    fences: List[Tuple[int, str, str]] = []
    language = None
    buffer: List[str] = []
    start = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _FENCE_RE.match(line)
        if language is None:
            if match:
                language = match.group(1).lower()
                start = lineno + 1
                buffer = []
            else:
                prose.append((lineno, line))
        elif match and not match.group(1):
            fences.append((start, language, "\n".join(buffer)))
            language = None
        else:
            buffer.append(line)
    if language is not None:  # unterminated fence — surface it as prose
        prose.extend(
            (start + i, line) for i, line in enumerate(buffer)
        )
    return prose, fences


def _check_links(path: Path, prose: List[Tuple[int, str]]) -> List[Finding]:
    findings = []
    for lineno, line in prose:
        for match in _LINK_RE.finditer(line):
            target = match.group(1)
            if _SCHEME_RE.match(target) or target.startswith("#"):
                continue  # absolute URL or in-page anchor
            relative = target.split("#", 1)[0].split("?", 1)[0]
            if not relative:
                continue
            if not (path.parent / relative).exists():
                findings.append(
                    Finding(path, lineno, f"dead relative link: {target}")
                )
    return findings


def _check_fences(path: Path, fences: List[Tuple[int, str, str]]) -> List[Finding]:
    findings = []
    for start, language, code in fences:
        if language not in ("python", "py", "python3"):
            continue
        try:
            ast.parse(code)
        except SyntaxError as exc:
            line = start + (exc.lineno or 1) - 1
            findings.append(
                Finding(path, line, f"python fence does not parse: {exc.msg}")
            )
    return findings


def lint_file(path: Path) -> List[Finding]:
    """All findings for one markdown file."""
    prose, fences = _segments(path.read_text())
    return _check_links(path, prose) + _check_fences(path, fences)


def lint(paths: Sequence[Path]) -> List[Finding]:
    findings: List[Finding] = []
    for path in paths:
        if not path.exists():
            findings.append(Finding(path, 0, "file does not exist"))
            continue
        findings.extend(lint_file(path))
    return findings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="markdown files to lint (default: README.md + docs/*.md)",
    )
    args = parser.parse_args(argv)
    paths = args.files or default_files()
    findings = lint(paths)
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} finding(s) in {len(paths)} file(s)")
        return 1
    print(f"docs lint: {len(paths)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
