#!/usr/bin/env python3
"""Documentation linter: dead links, broken fences, stale metric rows.

Three checks, all cheap enough for every CI run:

1. **Relative links** — every ``[text](target)`` whose target is not an
   absolute URL or a pure in-page anchor must point at an existing file
   (anchors/query strings are stripped first; targets are resolved
   relative to the markdown file's directory).
2. **Python fences** — every ```python code block must parse
   (``ast.parse``), so rotted examples fail CI instead of readers.
3. **Metric cross-reference** (``--cross-ref``) — the metric-namespace
   table in ``docs/observability.md`` is checked both ways against the
   public metric catalog (``repro.obs.catalog``): every backticked
   metric token in a table row must resolve to a catalog entry, and
   every catalog entry must be covered by some documented token or
   namespace pattern. Renaming a counter without updating the docs —
   or shipping a public counter without documenting it — fails CI.

Links inside code fences are ignored (they are examples, not links).

Usage::

    python tools/docs_lint.py                # lint README.md + docs/*.md
    python tools/docs_lint.py --cross-ref    # same + metric cross-ref
    python tools/docs_lint.py path/to.md ... # lint specific files

Exits 1 if any finding is reported, printing one ``file:line: message``
per finding.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from fnmatch import fnmatchcase
from pathlib import Path
from typing import List, NamedTuple, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links: [text](target). Images ride along via the [
#: in their ![alt] prefix.
_LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")
_FENCE_RE = re.compile(r"^\s*```(\S*)\s*$")
_SCHEME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")

#: Backticked spans, the raw material of the metric cross-reference.
_BACKTICK_RE = re.compile(r"`([^`]+)`")
#: A backticked span that *is* a metric token: lowercase dotted name,
#: optionally with ``*`` wildcards or ``<placeholder>`` segments.
#: Everything else in backticks (class names, ``flag=value``, calls with
#: parens, CLI flags, file paths) deliberately fails this and is ignored.
_METRIC_TOKEN_RE = re.compile(r"[a-z][a-z0-9_.<>*]*\Z")
#: ``<algo>`` / ``<reason>`` placeholder segments become ``*`` wildcards.
_PLACEHOLDER_RE = re.compile(r"<[a-z_]+>")
#: The observability section whose table rows the cross-ref scans.
_METRIC_SECTION = "## Metric namespace"


class Finding(NamedTuple):
    path: Path
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.message}"


def default_files() -> List[Path]:
    """The pages this linter gates: the README and everything in docs/."""
    return [REPO_ROOT / "README.md"] + sorted((REPO_ROOT / "docs").glob("*.md"))


def _segments(text: str) -> Tuple[List[Tuple[int, str]], List[Tuple[int, str, str]]]:
    """Split markdown into prose lines and fenced code blocks.

    Returns ``(prose, fences)`` where prose is ``[(lineno, line)]``
    outside fences and fences is ``[(start_lineno, language, code)]``.
    """
    prose: List[Tuple[int, str]] = []
    fences: List[Tuple[int, str, str]] = []
    language = None
    buffer: List[str] = []
    start = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _FENCE_RE.match(line)
        if language is None:
            if match:
                language = match.group(1).lower()
                start = lineno + 1
                buffer = []
            else:
                prose.append((lineno, line))
        elif match and not match.group(1):
            fences.append((start, language, "\n".join(buffer)))
            language = None
        else:
            buffer.append(line)
    if language is not None:  # unterminated fence — surface it as prose
        prose.extend(
            (start + i, line) for i, line in enumerate(buffer)
        )
    return prose, fences


def _check_links(path: Path, prose: List[Tuple[int, str]]) -> List[Finding]:
    findings = []
    for lineno, line in prose:
        for match in _LINK_RE.finditer(line):
            target = match.group(1)
            if _SCHEME_RE.match(target) or target.startswith("#"):
                continue  # absolute URL or in-page anchor
            relative = target.split("#", 1)[0].split("?", 1)[0]
            if not relative:
                continue
            if not (path.parent / relative).exists():
                findings.append(
                    Finding(path, lineno, f"dead relative link: {target}")
                )
    return findings


def _check_fences(path: Path, fences: List[Tuple[int, str, str]]) -> List[Finding]:
    findings = []
    for start, language, code in fences:
        if language not in ("python", "py", "python3"):
            continue
        try:
            ast.parse(code)
        except SyntaxError as exc:
            line = start + (exc.lineno or 1) - 1
            findings.append(
                Finding(path, line, f"python fence does not parse: {exc.msg}")
            )
    return findings


def _load_catalog() -> List[str]:
    """The public metric catalog's name patterns, imported from src/."""
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.obs.catalog import CATALOG

    return [spec.name for spec in CATALOG]


def _metric_tokens(cell: str) -> List[str]:
    """Backticked metric tokens of one table cell, wildcard-normalized.

    Module paths (``repro.*``) are prose, not metrics, and are skipped.
    """
    tokens = []
    for span in _BACKTICK_RE.findall(cell):
        if not _METRIC_TOKEN_RE.fullmatch(span):
            continue
        if span.startswith("repro."):
            continue
        tokens.append(_PLACEHOLDER_RE.sub("*", span))
    return tokens


def _prefix_of(token: str) -> str:
    """The namespace a first-cell pattern contributes to its row.

    ``matcher.bitset.*`` → ``matcher.bitset``; ``gen.<algo>.*`` →
    ``gen.*`` (a whole-segment wildcard still prefixes);
    ``runtime.worker_*`` → ``runtime`` (a partial last segment cannot
    prefix anything); exact names like ``service.requests.rejected``
    prefix as themselves.
    """
    if token.endswith(".*"):
        token = token[:-2]
    head, _, tail = token.rpartition(".")
    if head and "*" in tail and tail != "*":
        return head
    return token


def _patterns_intersect(a: str, b: str) -> bool:
    """Whether two name patterns can describe the same concrete metric.

    Either side may carry ``*`` wildcards (documented families vs.
    catalog families), so the match runs in both directions.
    """
    return a == b or fnmatchcase(a, b) or fnmatchcase(b, a)


def _is_separator_row(cells: Sequence[str]) -> bool:
    return all(re.fullmatch(r":?-{3,}:?", cell) for cell in cells if cell)


def check_metric_crossref(
    path: Path, catalog: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Cross-reference a doc's metric-namespace table with the catalog.

    Forward: every metric token in a table row (resolved against the
    row's namespace prefixes) must match a catalog entry. Reverse: every
    catalog entry must be covered by some documented token or first-cell
    namespace pattern.
    """
    if catalog is None:
        catalog = _load_catalog()
    findings: List[Finding] = []
    documented: List[str] = []
    in_section = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        stripped = line.strip()
        if stripped.startswith("## "):
            in_section = stripped == _METRIC_SECTION
            continue
        if not in_section or not stripped.startswith("|"):
            continue
        cells = [cell.strip() for cell in stripped.strip("|").split("|")]
        if not cells or _is_separator_row(cells):
            continue
        first_tokens = _metric_tokens(cells[0])
        if not first_tokens:
            continue  # the header row, or a prose-only first cell
        prefixes = [_prefix_of(token) for token in first_tokens]
        for token in first_tokens:
            if not any(_patterns_intersect(token, entry) for entry in catalog):
                findings.append(
                    Finding(
                        path,
                        lineno,
                        f"documented metric pattern `{token}` matches "
                        "nothing in repro.obs.catalog",
                    )
                )
            documented.append(token)
        for cell in cells[1:]:
            for token in _metric_tokens(cell):
                candidates = [token] + [f"{p}.{token}" for p in prefixes]
                matching = [
                    candidate
                    for candidate in candidates
                    if any(_patterns_intersect(candidate, e) for e in catalog)
                ]
                if not matching:
                    findings.append(
                        Finding(
                            path,
                            lineno,
                            f"documented metric `{token}` is not in "
                            "repro.obs.catalog (tried "
                            f"{', '.join(candidates)}) — renamed, removed "
                            "or never public?",
                        )
                    )
                documented.extend(matching or candidates)
    for entry in catalog:
        if not any(_patterns_intersect(entry, doc) for doc in documented):
            findings.append(
                Finding(
                    path,
                    0,
                    f"public metric `{entry}` has no row in the "
                    f"{_METRIC_SECTION!r} table",
                )
            )
    return findings


def lint_file(path: Path) -> List[Finding]:
    """All findings for one markdown file."""
    prose, fences = _segments(path.read_text())
    return _check_links(path, prose) + _check_fences(path, fences)


def lint(paths: Sequence[Path]) -> List[Finding]:
    findings: List[Finding] = []
    for path in paths:
        if not path.exists():
            findings.append(Finding(path, 0, "file does not exist"))
            continue
        findings.extend(lint_file(path))
    return findings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="markdown files to lint (default: README.md + docs/*.md)",
    )
    parser.add_argument(
        "--cross-ref",
        action="store_true",
        help="also cross-reference the observability metric table "
        "against repro.obs.catalog (both directions)",
    )
    args = parser.parse_args(argv)
    paths = args.files or default_files()
    findings = lint(paths)
    if args.cross_ref:
        targets = [p for p in paths if p.name == "observability.md"]
        if not targets:
            targets = [REPO_ROOT / "docs" / "observability.md"]
        for target in targets:
            if target.exists():
                findings.extend(check_metric_crossref(target))
            else:
                findings.append(Finding(target, 0, "file does not exist"))
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} finding(s) in {len(paths)} file(s)")
        return 1
    print(f"docs lint: {len(paths)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
